package cudnnsim

import (
	"math"

	"vdnn/internal/gpu"
	"vdnn/internal/sim"
)

// Cost describes one kernel invocation: its duration on the compute engine,
// the useful arithmetic it performs, and the DRAM traffic it generates. The
// executor feeds these directly into the simulation timeline; DRAMBytes /
// Dur is the achieved bandwidth plotted in the paper's Figure 13.
type Cost struct {
	Dur       sim.Time
	Flops     int64
	DRAMBytes int64
}

// finish applies the roofline: duration is the max of compute time and
// memory time, floored at the minimum kernel duration.
func finish(spec gpu.Spec, flops int64, effFlops float64, traffic int64) Cost {
	var computeT, memT float64
	if flops > 0 && effFlops > 0 {
		computeT = float64(flops) / (spec.PeakFlops * effFlops)
	}
	if traffic > 0 {
		memT = float64(traffic) / spec.EffDRAMBps()
	}
	t := math.Max(computeT, memT)
	d := sim.Time(t * 1e9)
	if d < minKernelTime {
		d = minKernelTime
	}
	return Cost{Dur: d, Flops: flops, DRAMBytes: traffic}
}

// sizeDerate models SM underutilization for small kernels: below the knee
// the achieved throughput falls off as the square root of the parallelism.
func sizeDerate(outElems int64) float64 {
	if outElems >= derateKneeElems {
		return 1
	}
	d := math.Sqrt(float64(outElems) / float64(derateKneeElems))
	if d < derateFloor {
		return derateFloor
	}
	return d
}

// gemmTraffic estimates DRAM traffic of a blocked M x Kd x Nd GEMM: each
// operand is streamed once, and re-read once per block-panel of the opposing
// dimension when it does not fit in L2. Conv layers expressed as implicit
// GEMMs inherit the im2col re-read factor through the logical B matrix.
func gemmTraffic(spec gpu.Spec, m, kd, nd, elemSize int64) int64 {
	a := m * kd * elemSize
	b := kd * nd * elemSize
	c := m * nd * elemSize
	ta := a
	if a > spec.L2Bytes {
		ta = a * ((nd + gemmBlock - 1) / gemmBlock)
	}
	tb := b
	if b > spec.L2Bytes {
		tb = b * ((m + gemmBlock - 1) / gemmBlock)
	}
	// Cap pathological re-read estimates at 64 passes over the operand; real
	// kernels add another blocking level long before this.
	if ta > 64*a {
		ta = 64 * a
	}
	if tb > 64*b {
		tb = 64 * b
	}
	return ta + tb + c
}

// ConvCost returns the cost of one convolution kernel. Evaluations are
// memoized by (spec, geometry, algorithm, direction): repeated layers and
// repeated configurations of a sweep hit the cache instead of re-running the
// roofline model. Safe for concurrent use.
func ConvCost(spec gpu.Spec, g ConvGeom, a ConvAlgo, dir Direction) Cost {
	k := costKey{newSpecKey(spec), g, a, dir}
	if c, ok := costMemo.Load(k); ok {
		return c.(Cost)
	}
	c := convCost(spec, g, a, dir)
	costMemo.Store(k, c)
	return c
}

// convCost is the uncached roofline evaluation.
func convCost(spec gpu.Spec, g ConvGeom, a ConvAlgo, dir Direction) Cost {
	if !a.Supported(g, dir) {
		panic("cudnnsim: ConvCost on unsupported algorithm " + a.String())
	}
	es := g.DType.Size()
	flops := g.Flops(dir)
	oh, ow := int64(g.OutH()), int64(g.OutW())
	n, c, k := int64(g.N), int64(g.C), int64(g.K)
	h, w := int64(g.H), int64(g.W)
	rs := int64(g.R) * int64(g.S)

	var outElems int64
	var traffic int64
	switch dir {
	case Fwd:
		outElems = n * k * oh * ow
	case BwdData:
		outElems = n * c * h * w
	case BwdFilter:
		outElems = k * c * rs
		// dW has few elements but the reduction streams the full maps.
		outElems = max64(outElems, n*k*oh*ow/8)
	}

	switch a {
	case ImplicitGEMM, ImplicitPrecompGEMM, GEMM:
		switch dir {
		case Fwd: // (K x C*R*S) * (C*R*S x N*Oh*Ow)
			traffic = gemmTraffic(spec, k, c*rs, n*oh*ow, es)
		case BwdData: // (C x K*R*S) * (K*R*S x N*H*W)
			traffic = gemmTraffic(spec, c, k*rs, n*h*w, es)
		case BwdFilter: // (K x N*Oh*Ow) * (N*Oh*Ow x C*R*S)
			traffic = gemmTraffic(spec, k, n*oh*ow, c*rs, es)
		}
		if a == GEMM {
			// Explicit im2col writes then reads the lowered matrix once more.
			traffic += 2 * c * rs * n * oh * ow * es
		}
	case FFT, FFTTiling:
		// Transforms write and read the frequency-domain workspace once each
		// way, plus the natural-domain tensors.
		ws := a.Workspace(g, dir)
		xb := n * c * h * w * es
		yb := n * k * oh * ow * es
		wb := k * c * rs * es
		traffic = xb + yb + wb + 2*ws
	}

	eff := a.effFlops(g) * sizeDerate(outElems)
	return finish(spec, flops, eff, traffic)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// GEMMCost returns the cost of a cuBLAS SGEMM (classifier layers): an
// (M x Kd) * (Kd x Nd) multiply.
func GEMMCost(spec gpu.Spec, m, kd, nd, elemSize int64) Cost {
	flops := 2 * m * kd * nd
	eff := effCublasGEMM * sizeDerate(m*nd)
	return finish(spec, flops, eff, gemmTraffic(spec, m, kd, nd, elemSize))
}

// Bandwidth-bound layer kernels. Each takes the raw tensor byte counts and
// charges pure streaming traffic; FLOPs are negligible for all of them.

// ActivationFwdCost is an in-place ReLU/sigmoid/tanh: read X, write Y over
// the same buffer.
func ActivationFwdCost(spec gpu.Spec, bytes int64) Cost {
	return finish(spec, 0, 1, 2*bytes)
}

// ActivationBwdCost reads Y and dY and writes dX (in place over dY).
func ActivationBwdCost(spec gpu.Spec, bytes int64) Cost {
	return finish(spec, 0, 1, 3*bytes)
}

// PoolFwdCost reads X and writes the smaller Y.
func PoolFwdCost(spec gpu.Spec, inBytes, outBytes int64) Cost {
	return finish(spec, 0, 1, inBytes+outBytes)
}

// PoolBwdCost reads X, Y, dY and writes dX (cudnnPoolingBackward signature).
func PoolBwdCost(spec gpu.Spec, inBytes, outBytes int64) Cost {
	return finish(spec, 0, 1, 2*inBytes+2*outBytes)
}

// LRNFwdCost is a cross-channel local response normalization: reads X across
// a channel window and writes Y. The window re-read is cache-resident, so
// traffic is ~read + write.
func LRNFwdCost(spec gpu.Spec, bytes int64) Cost {
	return finish(spec, 0, 1, 2*bytes)
}

// LRNBwdCost reads X, Y and dY, writes dX.
func LRNBwdCost(spec gpu.Spec, bytes int64) Cost {
	return finish(spec, 0, 1, 4*bytes)
}

// DropoutFwdCost reads X and the mask, writes Y.
func DropoutFwdCost(spec gpu.Spec, bytes, maskBytes int64) Cost {
	return finish(spec, 0, 1, 2*bytes+maskBytes)
}

// DropoutBwdCost reads dY and the mask, writes dX.
func DropoutBwdCost(spec gpu.Spec, bytes, maskBytes int64) Cost {
	return finish(spec, 0, 1, 2*bytes+maskBytes)
}

// ConcatCost copies branch outputs into (fwd) or out of (bwd) a joined
// buffer: read + write of the moved bytes.
func ConcatCost(spec gpu.Spec, bytes int64) Cost {
	return finish(spec, 0, 1, 2*bytes)
}

// SoftmaxCost covers softmax plus the loss gradient seed: a few passes over
// the (small) class-score tensor.
func SoftmaxCost(spec gpu.Spec, bytes int64) Cost {
	return finish(spec, 0, 1, 4*bytes)
}

// ElementwiseCost is a generic streaming kernel over n bytes per pass.
func ElementwiseCost(spec gpu.Spec, bytes int64, passes int) Cost {
	return finish(spec, 0, 1, bytes*int64(passes))
}

// Package cudnnsim models the cuDNN 4.0 kernel library the paper builds
// vDNN on: the six convolution algorithms with their workspace requirements
// and relative performance, the auxiliary layer kernels (activation,
// pooling, LRN, dropout, softmax, concat), the cuBLAS GEMM used by
// fully-connected layers, and the cudnnFind*Algorithm profiling API that the
// dynamic vDNN policy drives.
//
// Costs come from a roofline model: a kernel takes
// max(flops/effective_flops, dram_traffic/effective_bandwidth), where DRAM
// traffic is derived from a blocked-GEMM cache model. Absolute numbers are
// calibrated (see calib.go) to cuDNN-4-era measurements; the paper's results
// depend on ratios (algorithm speedups, compute-vs-PCIe overlap), which the
// model preserves.
package cudnnsim

import (
	"fmt"
	"math"

	"vdnn/internal/tensor"
)

// ConvAlgo enumerates the six cuDNN 4.0 convolution algorithms
// (cudnnConvolutionFwdAlgo_t). The paper's memory/performance trade-off is
// the choice among these (Section III-C).
type ConvAlgo int

const (
	// ImplicitGEMM is the memory-optimal algorithm: no workspace at all.
	ImplicitGEMM ConvAlgo = iota
	// ImplicitPrecompGEMM precomputes index tiles into a small workspace.
	ImplicitPrecompGEMM
	// GEMM materializes the full im2col matrix in the workspace.
	GEMM
	// Direct is enumerated by cuDNN 4 but had no production kernel.
	Direct
	// FFT convolves in the frequency domain; very large workspace holding
	// the transformed feature maps, filters and products.
	FFT
	// FFTTiling does FFT on 32x32 tiles, trading speed for far less
	// workspace.
	FFTTiling
	numAlgos
)

var algoNames = [...]string{
	"implicit-gemm", "implicit-precomp-gemm", "gemm", "direct", "fft", "fft-tiling",
}

func (a ConvAlgo) String() string {
	if a >= 0 && int(a) < len(algoNames) {
		return algoNames[a]
	}
	return fmt.Sprintf("ConvAlgo(%d)", int(a))
}

// Algos lists all algorithms in enumeration order.
func Algos() []ConvAlgo {
	out := make([]ConvAlgo, numAlgos)
	for i := range out {
		out[i] = ConvAlgo(i)
	}
	return out
}

// Direction selects among the three convolution kernels of a training step.
type Direction int

const (
	Fwd       Direction = iota // Y = X * W
	BwdData                    // dX = dY * W^T
	BwdFilter                  // dW = X^T * dY
)

func (d Direction) String() string {
	switch d {
	case Fwd:
		return "fwd"
	case BwdData:
		return "bwd-data"
	case BwdFilter:
		return "bwd-filter"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// ConvGeom is the full geometry of one convolution layer instance.
type ConvGeom struct {
	N, C, H, W       int // input feature map
	K, R, S          int // output channels, filter height/width
	StrideH, StrideW int
	PadH, PadW       int
	DType            tensor.DType
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return tensor.ConvOut(g.H, g.R, g.StrideH, g.PadH, false) }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return tensor.ConvOut(g.W, g.S, g.StrideW, g.PadW, false) }

// InShape returns the input tensor shape.
func (g ConvGeom) InShape() tensor.Shape { return tensor.NCHW(g.N, g.C, g.H, g.W) }

// OutShape returns the output tensor shape.
func (g ConvGeom) OutShape() tensor.Shape { return tensor.NCHW(g.N, g.K, g.OutH(), g.OutW()) }

// WeightBytes returns the filter bank footprint.
func (g ConvGeom) WeightBytes() int64 {
	return int64(g.K) * int64(g.C) * int64(g.R) * int64(g.S) * g.DType.Size()
}

// Flops returns the direct-convolution FLOP count for one direction
// (multiply and add counted separately). BwdData and BwdFilter each match
// the forward count, the standard accounting for SGD convolutions.
func (g ConvGeom) Flops(Direction) int64 {
	return 2 * int64(g.N) * int64(g.K) * int64(g.OutH()) * int64(g.OutW()) *
		int64(g.C) * int64(g.R) * int64(g.S)
}

// Supported reports whether the algorithm can run this geometry in the given
// direction, mirroring cuDNN 4 constraints: the FFT family requires unit
// stride and bounded filter sizes; Direct has no kernel at all.
func (a ConvAlgo) Supported(g ConvGeom, dir Direction) bool {
	switch a {
	case ImplicitGEMM, ImplicitPrecompGEMM, GEMM:
		return true
	case Direct:
		return false // enumerated but not implemented in cuDNN 4
	case FFT, FFTTiling:
		return g.StrideH == 1 && g.StrideW == 1 &&
			g.R <= maxFFTFilter && g.S <= maxFFTFilter &&
			g.PadH < g.R && g.PadW < g.S
	}
	return false
}

// Workspace returns the workspace bytes the algorithm needs for this
// geometry and direction (cudnnGetConvolution*WorkspaceSize).
func (a ConvAlgo) Workspace(g ConvGeom, dir Direction) int64 {
	es := g.DType.Size()
	oh, ow := int64(g.OutH()), int64(g.OutW())
	switch a {
	case ImplicitGEMM, Direct:
		return 0
	case ImplicitPrecompGEMM:
		// Precomputed output-tile index buffer: one entry per filter tap per
		// output pixel column block. Small (single-digit MB).
		return oh * ow * int64(g.R) * int64(g.S) * 4
	case GEMM:
		// The im2col matrix: (C*R*S) x (N*OutH*OutW).
		return int64(g.C) * int64(g.R) * int64(g.S) * int64(g.N) * oh * ow * es
	case FFT:
		// Frequency-domain buffers for inputs, filters, and outputs. cuDNN
		// pads each 2-D transform to (H+R-1) x (W+S-1) and stores complex
		// values: (N*C + C*K + N*K) * Hf * (Wf/2+1) * 2 floats.
		hf := int64(g.H + g.R - 1)
		wfHalf := int64((g.W+g.S-1)/2 + 1)
		maps := int64(g.N)*int64(g.C) + int64(g.C)*int64(g.K) + int64(g.N)*int64(g.K)
		return maps * hf * wfHalf * 2 * es
	case FFTTiling:
		// 32x32 tiles, processed in batch chunks: filter transforms persist
		// (C*K maps) plus a working set for `fftTileBatch` images.
		tileArea := int64(fftTileSize) * int64(fftTileSize/2+1)
		maps := int64(g.C)*int64(g.K) + int64(fftTileBatch)*int64(g.C+g.K)
		return maps * tileArea * 2 * es
	}
	return 0
}

// maxAlgoWorkspace returns the largest workspace over the supported
// algorithms for a geometry; used by capacity planning tests.
func maxAlgoWorkspace(g ConvGeom, dir Direction) int64 {
	var max int64
	for _, a := range Algos() {
		if a.Supported(g, dir) {
			if ws := a.Workspace(g, dir); ws > max {
				max = ws
			}
		}
	}
	return max
}

// effFlops returns the fraction of peak FLOP/s the algorithm achieves on the
// direct-convolution FLOP count. The FFT family exceeds 1.0 on large filters
// because it performs asymptotically less arithmetic than direct
// convolution; the value is an *effective* rate over direct-conv FLOPs.
func (a ConvAlgo) effFlops(g ConvGeom) float64 {
	switch a {
	case ImplicitGEMM:
		return effImplicitGEMM
	case ImplicitPrecompGEMM:
		return effPrecompGEMM
	case GEMM:
		return effGEMM
	case Direct:
		return effDirect
	case FFT:
		return math.Min(fftEffCap, fftEffBase*math.Sqrt(float64(g.R*g.S)))
	case FFTTiling:
		return fftTilingScale * math.Min(fftEffCap, fftEffBase*math.Sqrt(float64(g.R*g.S)))
	}
	return 0
}

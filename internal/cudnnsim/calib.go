package cudnnsim

import "vdnn/internal/sim"

// Calibration constants for the kernel cost model. All absolute performance
// in the simulator traces back to these values plus the gpu.Spec hardware
// numbers. They are set to reproduce cuDNN-4-era measurements on Maxwell
// (convnet-benchmarks) and the calibration targets quoted in the paper:
//
//   - memory-optimal implicit GEMM is roughly 2-2.5x slower than the
//     performance-optimal FFT path on 3x3 convolutions, which is what makes
//     static vDNN(m) lose ~55-60% performance (paper Fig 14);
//   - ACTV/POOL layers are bandwidth-bound and far cheaper than CONV,
//     so >70-80% of time is spent in CONV layers (Section III-C);
//   - AlexNet layer-1 reuse distance > 60 ms, VGG-16 (64) > 1200 ms
//     (Section III-A, with memory-optimal algorithms).
const (
	// Effective fraction of peak FLOP/s on direct-conv FLOPs, per algorithm.
	effImplicitGEMM = 0.40
	effPrecompGEMM  = 0.62
	effGEMM         = 0.55
	effDirect       = 0.45 // unused: cuDNN 4 has no direct kernel

	// FFT effective rate: base * sqrt(R*S), capped. 3x3 -> ~0.99 of peak,
	// 5x5 and larger saturate the cap (FFT's advantage grows with filter
	// area because its arithmetic does not).
	fftEffBase = 0.33
	fftEffCap  = 1.45
	// FFT-tiling pays overlap-add overhead relative to monolithic FFT.
	fftTilingScale = 0.88

	// FFT geometry constraints (cuDNN 4).
	maxFFTFilter = 32
	fftTileSize  = 32
	fftTileBatch = 32

	// GEMM cache-blocking model: panels are re-read once per 128-wide block
	// of the opposing dimension unless they fit in L2.
	gemmBlock = 128

	// Efficiency of cuBLAS SGEMM for classifier layers.
	effCublasGEMM = 0.70

	// Bandwidth-bound kernels (activation, pooling, ...) achieve the
	// device's effective DRAM bandwidth; their FLOPs are never the
	// bottleneck.

	// sizeDerate: kernels with fewer output elements than this underutilize
	// the SM array; throughput scales as sqrt below the knee.
	derateKneeElems = 131072 // 128k output elements saturate Maxwell
	derateFloor     = 0.10

	// minKernelTime is the floor duration of any launched kernel (ramp-up,
	// tail effects).
	minKernelTime = 8 * sim.Microsecond
)

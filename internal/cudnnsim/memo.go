package cudnnsim

import (
	"sync"

	"vdnn/internal/gpu"
)

// Cost-model memoization. A network repeats the same convolution geometries
// across layers and iterations, and a sweep repeats the same networks across
// dozens of configurations, so the cost model recomputes identical
// (spec, geometry, algorithm, direction) evaluations millions of times.
// Both caches key on comparable value types — gpu.Spec and ConvGeom are
// plain value structs — and are safe for the concurrent access the sweep
// engine's workers generate. The model is pure, so memoization cannot change
// any simulated result. The working set is bounded by the distinct layer
// geometries of the studied networks (hundreds), not by simulation count.

// specKey is the subset of gpu.Spec the convolution cost model reads —
// roofline compute rate, effective DRAM bandwidth, and the L2 size feeding
// the GEMM traffic model. Keying on it (instead of the whole Spec, whose
// name strings dominate hashing cost) keeps lookups cheap and lets specs
// that differ only in cost-irrelevant fields (memory capacity, link,
// power model) share entries — the capacity and interconnect sweeps reuse
// one cache.
type specKey struct {
	peakFlops float64
	effBps    float64
	l2        int64
}

func newSpecKey(spec gpu.Spec) specKey {
	return specKey{spec.PeakFlops, spec.EffDRAMBps(), spec.L2Bytes}
}

type costKey struct {
	spec specKey
	g    ConvGeom
	a    ConvAlgo
	dir  Direction
}

type findKey struct {
	spec specKey
	g    ConvGeom
	dir  Direction
}

var (
	costMemo sync.Map // costKey -> Cost
	findMemo sync.Map // findKey -> []AlgoPerf, sorted, unfiltered
)

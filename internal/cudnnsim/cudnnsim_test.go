package cudnnsim

import (
	"testing"
	"testing/quick"

	"vdnn/internal/gpu"
	"vdnn/internal/sim"
	"vdnn/internal/tensor"
)

// vggConv12 is VGG-16's conv1_2 (the most memory-hungry layer): 64->64
// channels at 224x224, 3x3/s1/p1.
func vggConv12(batch int) ConvGeom {
	return ConvGeom{N: batch, C: 64, H: 224, W: 224, K: 64, R: 3, S: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DType: tensor.Float32}
}

// alexConv1 is AlexNet's first layer: stride 4, so the FFT family is out.
func alexConv1(batch int) ConvGeom {
	return ConvGeom{N: batch, C: 3, H: 224, W: 224, K: 64, R: 11, S: 11,
		StrideH: 4, StrideW: 4, PadH: 2, PadW: 2, DType: tensor.Float32}
}

func TestGeometry(t *testing.T) {
	g := vggConv12(64)
	if g.OutH() != 224 || g.OutW() != 224 {
		t.Fatalf("VGG 3x3/s1/p1 must preserve 224: %dx%d", g.OutH(), g.OutW())
	}
	if g.WeightBytes() != 64*64*9*4 {
		t.Fatalf("weights = %d", g.WeightBytes())
	}
	a := alexConv1(128)
	if a.OutH() != 55 {
		t.Fatalf("AlexNet conv1 out = %d, want 55", a.OutH())
	}
	// 2*N*K*Oh*Ow*C*R*S
	want := int64(2) * 64 * 64 * 224 * 224 * 64 * 9
	if g.Flops(Fwd) != want || g.Flops(BwdData) != want || g.Flops(BwdFilter) != want {
		t.Fatalf("flops = %d, want %d", g.Flops(Fwd), want)
	}
}

func TestAlgoSupport(t *testing.T) {
	g := vggConv12(64)
	if !FFT.Supported(g, Fwd) || !FFTTiling.Supported(g, Fwd) {
		t.Fatal("FFT family must support unit-stride 3x3")
	}
	if Direct.Supported(g, Fwd) {
		t.Fatal("direct has no cuDNN 4 kernel")
	}
	a := alexConv1(128)
	if FFT.Supported(a, Fwd) || FFTTiling.Supported(a, Fwd) {
		t.Fatal("FFT family must reject stride 4")
	}
	for _, algo := range []ConvAlgo{ImplicitGEMM, ImplicitPrecompGEMM, GEMM} {
		if !algo.Supported(a, Fwd) {
			t.Fatalf("%v must support any geometry", algo)
		}
	}
}

func TestWorkspaceSizes(t *testing.T) {
	g := vggConv12(64)
	if ws := ImplicitGEMM.Workspace(g, Fwd); ws != 0 {
		t.Fatalf("implicit GEMM workspace = %d, want 0", ws)
	}
	// Precomp: small (< 16 MB).
	if ws := ImplicitPrecompGEMM.Workspace(g, Fwd); ws <= 0 || ws > 16<<20 {
		t.Fatalf("precomp workspace = %d, want small positive", ws)
	}
	// GEMM im2col for conv1_2(64): 576*64*50176*4 = 6.9 GiB. Huge.
	if ws := GEMM.Workspace(g, Fwd); ws < 6<<30 {
		t.Fatalf("gemm im2col workspace = %d, want > 6 GiB", ws)
	}
	// FFT for conv1_2(64): (64*64*3 maps)*226*114*8 = ~2.3 GiB.
	ws := FFT.Workspace(g, Fwd)
	if ws < 2<<30 || ws > 3<<30 {
		t.Fatalf("fft workspace = %s, want ~2.3 GiB", tensor.FormatBytes(ws))
	}
	// FFT workspace grows with batch (the paper's VGG-16 (256) needs ~28 GB
	// under performance-optimal algorithms largely because of this).
	if FFT.Workspace(vggConv12(256), Fwd) <= 2*ws {
		t.Fatal("fft workspace must grow ~linearly with batch")
	}
	// Tiling is dramatically smaller than monolithic FFT.
	if tws := FFTTiling.Workspace(g, Fwd); tws <= 0 || tws > ws/10 {
		t.Fatalf("fft-tiling workspace = %s vs fft %s, want >10x smaller",
			tensor.FormatBytes(tws), tensor.FormatBytes(ws))
	}
}

func TestAlgoSpeedOrdering(t *testing.T) {
	spec := gpu.TitanX()
	g := vggConv12(64)
	tFFT := ConvCost(spec, g, FFT, Fwd).Dur
	tTile := ConvCost(spec, g, FFTTiling, Fwd).Dur
	tPre := ConvCost(spec, g, ImplicitPrecompGEMM, Fwd).Dur
	tGemm := ConvCost(spec, g, GEMM, Fwd).Dur
	tImp := ConvCost(spec, g, ImplicitGEMM, Fwd).Dur
	if !(tFFT < tTile && tTile < tPre && tPre < tGemm && tGemm < tImp) {
		t.Fatalf("3x3 speed order wrong: fft=%v tile=%v pre=%v gemm=%v imp=%v",
			tFFT, tTile, tPre, tGemm, tImp)
	}
	// The performance-optimal/memory-optimal gap drives the paper's static
	// vDNN(m) slowdowns: must be roughly 2-3x for 3x3 convolutions.
	ratio := float64(tImp) / float64(tFFT)
	if ratio < 1.8 || ratio > 3.2 {
		t.Fatalf("implicit/FFT ratio = %.2f, want ~2-3x", ratio)
	}
}

func TestConvCostMagnitudes(t *testing.T) {
	// conv1_2 with batch 64 on Titan X: 237 GFLOP. FFT should land in the
	// tens of ms; implicit GEMM near 85 ms (2.8 TFLOPS effective).
	spec := gpu.TitanX()
	g := vggConv12(64)
	imp := ConvCost(spec, g, ImplicitGEMM, Fwd)
	if ms := imp.Dur.Msec(); ms < 60 || ms > 120 {
		t.Fatalf("implicit GEMM conv1_2(64) = %.1f ms, want ~85 ms", ms)
	}
	fft := ConvCost(spec, g, FFT, Fwd)
	if ms := fft.Dur.Msec(); ms < 20 || ms > 50 {
		t.Fatalf("fft conv1_2(64) = %.1f ms, want ~34 ms", ms)
	}
}

func TestDRAMTrafficBand(t *testing.T) {
	// Fig 13: VGG layers under the baseline should achieve tens to ~200 GB/s
	// of DRAM bandwidth — well under the 336 GB/s peak, leaving headroom for
	// PCIe traffic. Check the band for representative early/late layers.
	spec := gpu.TitanX()
	early := vggConv12(128)
	late := ConvGeom{N: 128, C: 512, H: 14, W: 14, K: 512, R: 3, S: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, DType: tensor.Float32}
	for _, tc := range []struct {
		name string
		g    ConvGeom
	}{{"conv1_2", early}, {"conv5_x", late}} {
		c := ConvCost(spec, tc.g, ImplicitGEMM, Fwd)
		bw := float64(c.DRAMBytes) / c.Dur.Seconds() / 1e9
		if bw < 20 || bw > 250 {
			t.Errorf("%s: achieved %0.f GB/s, want within [20,250]", tc.name, bw)
		}
		if bw > spec.DRAMBps/1e9 {
			t.Errorf("%s: achieved %0.f GB/s exceeds peak", tc.name, bw)
		}
	}
}

func TestBwdCostsComparableToFwd(t *testing.T) {
	spec := gpu.TitanX()
	g := vggConv12(64)
	f := ConvCost(spec, g, ImplicitGEMM, Fwd).Dur
	bd := ConvCost(spec, g, ImplicitGEMM, BwdData).Dur
	bf := ConvCost(spec, g, ImplicitGEMM, BwdFilter).Dur
	// Each backward kernel is within 3x of forward; total backward is
	// heavier than forward (the well-known ~2x).
	for _, d := range []sim.Time{bd, bf} {
		if d < f/3 || d > 3*f {
			t.Fatalf("bwd kernel %v out of range vs fwd %v", d, f)
		}
	}
	if bd+bf <= f {
		t.Fatalf("bwd total %v should exceed fwd %v", bd+bf, f)
	}
}

func TestUnsupportedConvCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ConvCost on unsupported algo did not panic")
		}
	}()
	ConvCost(gpu.TitanX(), alexConv1(128), FFT, Fwd)
}

func TestFindConvAlgorithms(t *testing.T) {
	spec := gpu.TitanX()
	g := vggConv12(64)
	perfs := FindConvAlgorithms(spec, g, Fwd, -1)
	if len(perfs) != 5 { // all but Direct
		t.Fatalf("got %d algorithms, want 5", len(perfs))
	}
	if perfs[0].Algo != FFT {
		t.Fatalf("fastest = %v, want fft", perfs[0].Algo)
	}
	for i := 1; i < len(perfs); i++ {
		if perfs[i].Time < perfs[i-1].Time {
			t.Fatal("results not sorted by time")
		}
	}
	// With a tiny workspace limit, the large-workspace algorithms drop out.
	small := FindConvAlgorithms(spec, g, Fwd, 1<<20)
	for _, p := range small {
		if p.Workspace > 1<<20 {
			t.Fatalf("algo %v exceeds workspace limit", p.Algo)
		}
	}
	if len(small) == 0 || small[len(small)-1].Algo != ImplicitGEMM && small[0].Algo != ImplicitGEMM {
		// implicit GEMM (ws=0) must always survive
		found := false
		for _, p := range small {
			if p.Algo == ImplicitGEMM {
				found = true
			}
		}
		if !found {
			t.Fatal("implicit GEMM missing under workspace limit")
		}
	}
}

func TestFastestAlgoRespectsLimit(t *testing.T) {
	spec := gpu.TitanX()
	g := vggConv12(64)
	unlimited := FastestAlgo(spec, g, Fwd, -1)
	if unlimited.Algo != FFT {
		t.Fatalf("unlimited fastest = %v, want fft", unlimited.Algo)
	}
	constrained := FastestAlgo(spec, g, Fwd, 64<<20)
	if constrained.Algo == FFT || constrained.Algo == GEMM {
		t.Fatalf("constrained fastest = %v, exceeds 64 MB workspace", constrained.Algo)
	}
	zero := FastestAlgo(spec, g, Fwd, 0)
	if zero.Algo != ImplicitGEMM {
		t.Fatalf("zero-workspace fastest = %v, want implicit-gemm", zero.Algo)
	}
}

func TestGEMMCost(t *testing.T) {
	spec := gpu.TitanX()
	// VGG fc6 with batch 128: (4096 x 25088) * (25088 x 128).
	c := GEMMCost(spec, 4096, 25088, 128, 4)
	wantFlops := int64(2) * 4096 * 25088 * 128
	if c.Flops != wantFlops {
		t.Fatalf("flops = %d, want %d", c.Flops, wantFlops)
	}
	if ms := c.Dur.Msec(); ms < 2 || ms > 20 {
		t.Fatalf("fc6 fwd = %.2f ms, want single-digit ms", ms)
	}
}

func TestBandwidthBoundKernels(t *testing.T) {
	spec := gpu.TitanX()
	// ReLU over VGG conv1 output, batch 64: 822 MB in-place -> ~5.8 ms.
	bytes := int64(64) * 64 * 224 * 224 * 4
	c := ActivationFwdCost(spec, bytes)
	if ms := c.Dur.Msec(); ms < 4 || ms > 9 {
		t.Fatalf("ReLU 822MB = %.2f ms, want ~5.8 ms", ms)
	}
	// ACTV/POOL must be far cheaper than the adjacent CONV (this is why
	// vDNNconv hides offload latency but vDNNall may not, Section III-C).
	conv := ConvCost(spec, vggConv12(64), FFT, Fwd)
	if c.Dur*3 > conv.Dur {
		t.Fatalf("activation %v not << conv %v", c.Dur, conv.Dur)
	}
	if b := ActivationBwdCost(spec, bytes); b.Dur <= c.Dur {
		t.Fatal("activation bwd should cost more than fwd (3 passes vs 2)")
	}
	p := PoolFwdCost(spec, bytes, bytes/4)
	if p.Dur <= 0 || p.DRAMBytes != bytes+bytes/4 {
		t.Fatalf("pool cost wrong: %+v", p)
	}
	pb := PoolBwdCost(spec, bytes, bytes/4)
	if pb.DRAMBytes != 2*bytes+bytes/2 {
		t.Fatalf("pool bwd traffic = %d", pb.DRAMBytes)
	}
	if LRNBwdCost(spec, bytes).Dur <= LRNFwdCost(spec, bytes).Dur {
		t.Fatal("LRN bwd should exceed fwd")
	}
	d := DropoutFwdCost(spec, bytes, bytes/4)
	if d.DRAMBytes != 2*bytes+bytes/4 {
		t.Fatalf("dropout traffic = %d", d.DRAMBytes)
	}
	if ConcatCost(spec, bytes).DRAMBytes != 2*bytes {
		t.Fatal("concat traffic wrong")
	}
	if SoftmaxCost(spec, 1000*128*4).Dur < minKernelTime {
		t.Fatal("softmax below kernel floor")
	}
	if ElementwiseCost(spec, bytes, 3).DRAMBytes != 3*bytes {
		t.Fatal("elementwise traffic wrong")
	}
}

func TestMinKernelFloor(t *testing.T) {
	spec := gpu.TitanX()
	c := ActivationFwdCost(spec, 16)
	if c.Dur != minKernelTime {
		t.Fatalf("tiny kernel = %v, want floor %v", c.Dur, minKernelTime)
	}
}

func TestSizeDerate(t *testing.T) {
	if sizeDerate(derateKneeElems) != 1 || sizeDerate(derateKneeElems*10) != 1 {
		t.Fatal("derate above knee must be 1")
	}
	if d := sizeDerate(derateKneeElems / 4); d < 0.49 || d > 0.51 {
		t.Fatalf("derate at quarter knee = %v, want 0.5", d)
	}
	if sizeDerate(1) != derateFloor {
		t.Fatal("derate floor not applied")
	}
}

func TestAlgoStringNames(t *testing.T) {
	if ImplicitGEMM.String() != "implicit-gemm" || FFTTiling.String() != "fft-tiling" {
		t.Fatal("algo names wrong")
	}
	if Fwd.String() != "fwd" || BwdData.String() != "bwd-data" || BwdFilter.String() != "bwd-filter" {
		t.Fatal("direction names wrong")
	}
	if len(Algos()) != 6 {
		t.Fatal("cuDNN 4 provides six algorithms")
	}
}

// Property: costs scale monotonically with batch size for every algorithm
// and direction.
func TestCostMonotoneInBatch(t *testing.T) {
	spec := gpu.TitanX()
	f := func(seed uint8) bool {
		b1 := int(seed%4+1) * 16
		b2 := b1 * 2
		for _, a := range []ConvAlgo{ImplicitGEMM, ImplicitPrecompGEMM, GEMM, FFT, FFTTiling} {
			for _, dir := range []Direction{Fwd, BwdData, BwdFilter} {
				c1 := ConvCost(spec, vggConv12(b1), a, dir)
				c2 := ConvCost(spec, vggConv12(b2), a, dir)
				if c2.Dur < c1.Dur || c2.Flops != 2*c1.Flops {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

// Property: workspace is non-negative and deterministic for random sane
// geometries; implicit GEMM is always zero.
func TestWorkspaceProperties(t *testing.T) {
	f := func(n, c, k, hw, rs uint8) bool {
		g := ConvGeom{
			N: int(n%64) + 1, C: int(c) + 1, K: int(k) + 1,
			H: int(hw%128) + 8, W: int(hw%128) + 8,
			R: int(rs%5) + 1, S: int(rs%5) + 1,
			StrideH: 1, StrideW: 1, PadH: 0, PadW: 0, DType: tensor.Float32,
		}
		if ImplicitGEMM.Workspace(g, Fwd) != 0 {
			return false
		}
		for _, a := range Algos() {
			for _, dir := range []Direction{Fwd, BwdData, BwdFilter} {
				if a.Workspace(g, dir) < 0 {
					return false
				}
			}
		}
		return maxAlgoWorkspace(g, Fwd) >= GEMM.Workspace(g, Fwd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTAdvantageGrowsWithFilter(t *testing.T) {
	spec := gpu.TitanX()
	mk := func(r int) ConvGeom {
		return ConvGeom{N: 64, C: 64, H: 56, W: 56, K: 64, R: r, S: r,
			StrideH: 1, StrideW: 1, PadH: r / 2, PadW: r / 2, DType: tensor.Float32}
	}
	speedup := func(r int) float64 {
		g := mk(r)
		return float64(ConvCost(spec, g, ImplicitGEMM, Fwd).Dur) /
			float64(ConvCost(spec, g, FFT, Fwd).Dur)
	}
	if s3, s5 := speedup(3), speedup(5); s5 <= s3 {
		t.Fatalf("FFT advantage should grow with filter size: 3x3=%.2f 5x5=%.2f", s3, s5)
	}
}

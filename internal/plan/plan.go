package plan

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"vdnn/internal/compress"
	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/report"
	"vdnn/internal/sim"
	"vdnn/internal/sweep"
)

// ErrInfeasible reports a search that evaluated its whole space without
// finding any trainable configuration under the cap. Search still returns
// the Plan alongside it: the evidence table says why every branch died.
var ErrInfeasible = errors.New("plan: no trainable configuration under the memory cap")

// Env is the planner's execution environment: how to build the workload
// network at a given minibatch size and how to run a batch of candidate
// simulations. vdnn.Simulator satisfies it directly (Network + RunBatch),
// which routes every candidate through the shared sweep.Engine — cached,
// deduplicated, cancelable, chaos-testable.
type Env struct {
	Net func(batch int) (*dnn.Network, error)
	Run func(ctx context.Context, jobs []sweep.Job) ([]*core.Result, error)
}

// Counters summarizes how much of the space the search actually paid for.
type Counters struct {
	// Space is the size of the coarse candidate space (Request.Candidates).
	Space int `json:"space"`
	// Evaluated counts candidates that ran a simulation (refined ones too).
	Evaluated int `json:"evaluated"`
	// Pruned counts candidates skipped without evaluation, each with a
	// recorded reason.
	Pruned int `json:"pruned"`
	// Invalid counts candidates the simulator rejected as malformed (e.g. a
	// stage count the network cannot be partitioned into).
	Invalid int `json:"invalid"`
	// CacheHits counts refinement proposals answered by a result the search
	// already had, without a new simulation. (The engine's cross-request
	// result cache adds more hits on top; see its own stats.)
	CacheHits int `json:"cache_hits"`
	// Refined counts neighborhood-refinement candidates evaluated beyond
	// the coarse space.
	Refined int `json:"refined"`
}

// Add accumulates counters (used by serving stats).
func (c Counters) Add(o Counters) Counters {
	c.Space += o.Space
	c.Evaluated += o.Evaluated
	c.Pruned += o.Pruned
	c.Invalid += o.Invalid
	c.CacheHits += o.CacheHits
	c.Refined += o.Refined
	return c
}

// Evidence statuses.
const (
	StatusEvaluated = "evaluated"
	StatusPruned    = "pruned"
	StatusInvalid   = "invalid"
)

// Evidence is one row of the deterministic evidence table: a candidate and
// what the search did with it.
type Evidence struct {
	Candidate Candidate `json:"candidate"`
	// Status is evaluated, pruned or invalid.
	Status string `json:"status"`
	// Reason says why a row was pruned or invalid (empty when evaluated).
	Reason string `json:"reason,omitempty"`

	// Simulation outcome, present on evaluated rows only.
	Trainable      bool    `json:"trainable,omitempty"`
	FailReason     string  `json:"fail_reason,omitempty"`
	StepMS         float64 `json:"step_ms,omitempty"`
	PeakMiB        float64 `json:"peak_mib,omitempty"`
	BubbleFraction float64 `json:"bubble_fraction,omitempty"`
	Imbalance      float64 `json:"imbalance,omitempty"`
	// EnergyJ is the candidate's whole-fleet energy per iteration in
	// joules (all devices, compute + DMA + codec + idle) — the quantity
	// the MinimizeEnergy objective ranks by, recorded for every evaluated
	// trainable row regardless of objective.
	EnergyJ float64 `json:"energy_j,omitempty"`
}

// Plan is the search outcome: the winning configuration (when one exists)
// plus the full evidence table and the search counters.
type Plan struct {
	Network string `json:"network"`
	Batch   int    `json:"batch"`
	// Objective is what the search minimized ("time" or "energy").
	Objective Objective `json:"objective"`

	// Feasible reports whether any candidate trained under the cap.
	Feasible bool `json:"feasible"`
	// Best is the winning candidate; Config is it materialized against the
	// request's (capped) spec and topology; Result its full simulation.
	Best   *Candidate   `json:"best,omitempty"`
	Config core.Config  `json:"-"`
	Result *core.Result `json:"-"`

	Evidence []Evidence `json:"evidence"`
	Counters Counters   `json:"counters"`
}

// Search runs the pruned design-space search and returns the best plan.
//
// The search exploits the partial order of the space instead of evaluating
// all of it:
//
//   - Probes. Each parallelism point (single, each data-parallel width,
//     each pipeline shape) is probed with base(p) — the fastest possible
//     configuration at the point — and vDNN-all(m) per codec — the point's
//     memory floor. If base(p) trains, nothing else at the point can beat
//     it (offloading only adds transfer and synchronization time, and (p)
//     algorithms are the fastest), so the rest of the point is pruned as
//     dominated. If the floor does not train under the cap, every sibling
//     of that codec branch needs strictly more memory and is pruned as
//     untrainable by monotonicity.
//   - Data-parallel cascade. Per-replica memory grows with per-replica
//     batch, so the data-parallel family is probed widest-first: a floor
//     that fails at N devices condemns every narrower width (whose
//     replicas train larger minibatches) without another simulation.
//     Pipeline stage memory is not monotone in the stage count (stages cut
//     both the layer range and its offload opportunities), so pipeline
//     points are probed independently.
//   - Battery order. Within a surviving branch the remaining policies are
//     evaluated in a fixed order whose memory relations prune further:
//     conv(m) failing condemns conv(p) and base(m); all(p) failing
//     condemns conv(p). Baseline rows under a codec are pre-pruned: with
//     no offload traffic there is nothing to compress.
//   - Refinement. The incumbent's neighborhood outside the coarse grid
//     (micro-batch counts between grid lines, non-power-of-two replica
//     counts) is evaluated last and wins only on strictly better step time.
//
// Request.Objective selects what the winner minimizes: step time (the
// default) or whole-fleet energy per iteration. The waves above prune only
// on trainability and on dominations that hold under both metrics (see
// Objective), so the same evidence table serves either objective.
//
// Ties in the objective resolve to the earliest candidate in enumeration
// order, i.e. the simplest configuration. The result is deterministic:
// same request, same plan, same evidence table.
func Search(ctx context.Context, req Request, env Env) (*Plan, error) {
	req = req.withDefaults()
	if err := req.validate(); err != nil {
		return nil, err
	}
	if env.Net == nil || env.Run == nil {
		return nil, fmt.Errorf("plan: environment needs Net and Run")
	}
	s := &searcher{req: req, env: env, nets: map[int]netEntry{}}
	return s.run(ctx)
}

const (
	statusPending = iota
	statusEvaluated
	statusPruned
	statusInvalid
)

// Battery indices (see battery in space.go).
const (
	bBaseP = iota
	bAllM
	bAllP
	bConvP
	bConvM
	bBaseM
	bDyn
)

type netEntry struct {
	net *dnn.Network
	err error
}

type pointInfo struct {
	pt modePoint
	// cand[b][c] is the candidate index of battery row b under codec c;
	// -1 when the combination is not in the space.
	cand [][]int
}

type searcher struct {
	req  Request
	env  Env
	nets map[int]netEntry

	cands  []Candidate
	status []int
	reason []string
	res    []*core.Result
	// dead marks candidates known untrainable under the cap, whether by
	// evaluation or by monotonicity inference; downstream pruning rules key
	// off this fact rather than off how it was established.
	dead   []bool
	points []pointInfo

	counters Counters
}

// untrainable reports whether a candidate is known not to train under the
// cap (evaluated untrainable, or inferred so by a monotonicity prune).
func (s *searcher) untrainable(i int) bool { return i >= 0 && s.dead[i] }

func (s *searcher) run(ctx context.Context) (*Plan, error) {
	s.init()

	// Wave 1 — base(p) everywhere. A base(p) probe settles its branch's
	// fate: trainable means the branch is dominated (nothing there can beat
	// the no-offload, fastest-algorithm config) and pays for no further
	// simulation; a simulator rejection means the shape itself is
	// impossible and condemns every sibling. Single-device and
	// data-parallel points need one probe (their codec rows are baseline
	// no-ops, pre-pruned); pipeline points probe per codec branch, because
	// compressed inter-stage traffic changes baseline's time and peak.
	var bases []int
	for i := range s.points {
		for _, idx := range s.points[i].cand[bBaseP] {
			if idx >= 0 && s.status[idx] == statusPending {
				bases = append(bases, idx)
			}
		}
	}
	if err := s.evaluateCascade(ctx, bases); err != nil {
		return nil, err
	}
	for i := range s.points {
		p := &s.points[i]
		base := p.cand[bBaseP][0]
		if s.status[base] == statusInvalid {
			// Shape validation is policy-independent: a rejected baseline
			// means every candidate at the point is equally malformed.
			s.markPoint(p, statusInvalid, "mode point rejected by the simulator: "+s.reason[base])
			continue
		}
		for c := range s.req.Codecs {
			idx := p.cand[bBaseP][c]
			probe := idx
			if probe < 0 || s.status[probe] == statusPruned {
				// Codec row is a baseline no-op: the codec-free probe
				// speaks for the branch's domination verdict.
				probe = base
			}
			switch {
			case s.status[probe] == statusInvalid:
				s.pruneBranchInvalid(p, c, "codec branch rejected by the simulator: "+s.reason[probe])
			case s.status[probe] == statusEvaluated && s.res[probe].Trainable:
				s.pruneBranch(p, c, fmt.Sprintf(
					"dominated: base(p)%s trains at %s, and every offload policy only adds transfer and algorithm time there",
					codecSuffix(s.cands[probe].Comp), p.pt))
			}
		}
	}

	// Wave 2 — memory floors (vDNN-all(m) per codec branch) for the
	// surviving points. Pipeline shapes probe as micro-batch ladders,
	// finest-first (see evaluateCascade); the data-parallel family probes
	// widest-first, because per-replica memory grows with per-replica
	// batch: a floor that fails at N devices condemns every narrower width
	// (whose replicas train larger minibatches) without another simulation.
	var floorWave []int
	var dpCascade []*pointInfo
	for i := range s.points {
		p := &s.points[i]
		if len(s.pendingFloors(p)) == 0 {
			continue
		}
		if p.pt.stages > 1 {
			floorWave = append(floorWave, s.pendingFloors(p)...)
		} else {
			dpCascade = append(dpCascade, p)
		}
	}
	sort.SliceStable(dpCascade, func(i, j int) bool { return dpCascade[i].pt.devices > dpCascade[j].pt.devices })

	if err := s.evaluateCascade(ctx, floorWave); err != nil {
		return nil, err
	}
	floorDead := make([]struct {
		dead    bool
		devices int
	}, len(s.req.Codecs))
	for _, p := range dpCascade {
		for c := range s.req.Codecs {
			if floorDead[c].dead {
				s.pruneBranch(p, c, fmt.Sprintf(
					"untrainable by monotonicity: per-replica batch %d ≥ %d, where vDNN-all(m)%s — the memory floor — already exceeded the cap",
					s.req.Batch/p.pt.devices, s.req.Batch/floorDead[c].devices, codecSuffix(s.req.Codecs[c])))
			}
		}
		if err := s.evaluate(ctx, s.pendingFloors(p)); err != nil {
			return nil, err
		}
		for c := range s.req.Codecs {
			if s.untrainable(p.cand[bAllM][c]) && !floorDead[c].dead {
				floorDead[c].dead, floorDead[c].devices = true, p.pt.devices
			}
		}
	}
	for i := range s.points {
		s.applyFloorVerdicts(&s.points[i])
	}

	// Wave 3 — all(p) on the live branches, then conv(p) wherever all(p)
	// trained: vDNN-all offloads a strict superset of vDNN-conv, so an
	// all(p) failure proves conv(p) untrainable unevaluated.
	if err := s.evaluateCascade(ctx, s.pendingRows(bAllP)); err != nil {
		return nil, err
	}
	for i := range s.points {
		p := &s.points[i]
		for c := range s.req.Codecs {
			if s.untrainable(p.cand[bAllP][c]) {
				s.pruneUntrainable(p.cand[bConvP][c], fmt.Sprintf(
					"untrainable by monotonicity: all(p)%s — which offloads strictly more — already exceeded the cap", codecSuffix(s.req.Codecs[c])))
			}
		}
	}
	if err := s.evaluateCascade(ctx, s.pendingRows(bConvP)); err != nil {
		return nil, err
	}

	// Wave 4 — conv(m), skipped wherever conv(p) trained: memory-optimal
	// algorithms only slow the same offload schedule down, and the
	// tie-break already prefers the earlier conv(p) row.
	for i := range s.points {
		p := &s.points[i]
		for c := range s.req.Codecs {
			if idx := p.cand[bConvP][c]; idx >= 0 && s.status[idx] == statusEvaluated && s.res[idx].Trainable {
				s.pruneIfPending(p.cand[bConvM][c],
					"cannot win: conv(p) trains here, and memory-optimal algorithms only slow the same offload schedule down")
			}
		}
	}
	if err := s.evaluateCascade(ctx, s.pendingRows(bConvM)); err != nil {
		return nil, err
	}

	// Wave 5 — the long tail: base(m) (pruned when conv(m) failed, which
	// needs strictly less memory), dyn (pruned when both all(p) and
	// conv(p) trained: the dynamic policy converges to one of the static
	// policies with greedily chosen — never faster — algorithms), and
	// anything still pending.
	for i := range s.points {
		p := &s.points[i]
		for c := range s.req.Codecs {
			if s.untrainable(p.cand[bConvM][c]) {
				s.pruneUntrainable(p.cand[bBaseM][c], fmt.Sprintf(
					"untrainable by monotonicity: conv(m)%s — which offloads more and allocates no workspace — already exceeded the cap", codecSuffix(s.req.Codecs[c])))
			}
			allP, convP := p.cand[bAllP][c], p.cand[bConvP][c]
			if allP >= 0 && convP >= 0 &&
				s.status[allP] == statusEvaluated && s.res[allP].Trainable &&
				s.status[convP] == statusEvaluated && s.res[convP].Trainable {
				s.pruneIfPending(p.cand[bDyn][c],
					"cannot win: dyn converges to a static policy with greedy (never faster than perf-optimal) algorithms, and both all(p) and conv(p) train here")
			}
		}
	}
	var rest []int
	for i := range s.cands {
		if s.status[i] == statusPending {
			rest = append(rest, i)
		}
	}
	if err := s.evaluateCascade(ctx, rest); err != nil {
		return nil, err
	}

	// Refinement: probe the incumbent's neighborhood outside the coarse
	// grid; a refined candidate replaces it only on strictly better time.
	if best := s.best(); best >= 0 {
		if err := s.refine(ctx, best); err != nil {
			return nil, err
		}
	}

	return s.plan()
}

// markPoint applies a verdict to every still-pending candidate of a point.
func (s *searcher) markPoint(p *pointInfo, status int, reason string) {
	for _, row := range p.cand {
		for _, i := range row {
			if i >= 0 && s.status[i] == statusPending {
				s.mark(i, status, reason)
			}
		}
	}
}

// pendingFloors returns a point's still-pending all(m) probes.
func (s *searcher) pendingFloors(p *pointInfo) []int {
	var idxs []int
	for c := range s.req.Codecs {
		if i := p.cand[bAllM][c]; i >= 0 && s.status[i] == statusPending {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// pendingRows returns the still-pending candidates of one battery row
// across all points and codec branches.
func (s *searcher) pendingRows(b int) []int {
	var idxs []int
	for i := range s.points {
		for _, idx := range s.points[i].cand[b] {
			if idx >= 0 && s.status[idx] == statusPending {
				idxs = append(idxs, idx)
			}
		}
	}
	return idxs
}

func (s *searcher) init() {
	s.cands = s.req.Candidates()
	s.status = make([]int, len(s.cands))
	s.reason = make([]string, len(s.cands))
	s.res = make([]*core.Result, len(s.cands))
	s.dead = make([]bool, len(s.cands))
	s.counters.Space = len(s.cands)

	// Rebuild the (point, battery, codec) index over the flat enumeration.
	next := 0
	for _, pt := range s.req.modePoints() {
		p := pointInfo{pt: pt, cand: make([][]int, len(battery))}
		for b, pa := range battery {
			p.cand[b] = make([]int, len(s.req.Codecs))
			for c := range s.req.Codecs {
				if pa.p == core.VDNNDyn && pt.stages > 1 {
					p.cand[b][c] = -1
					continue
				}
				p.cand[b][c] = next
				next++
			}
		}
		s.points = append(s.points, p)
	}

	// Pre-prune: at single-device and data-parallel points baseline moves
	// no compressible traffic (no offload, and gradients all-reduce dense),
	// so a codec changes nothing about it — those rows duplicate the
	// codec-free baseline. Pipeline points keep their baseline codec rows:
	// inter-stage activations do compress there.
	for i := range s.points {
		p := &s.points[i]
		if p.pt.stages > 1 {
			continue
		}
		for _, b := range []int{bBaseP, bBaseM} {
			for c := 1; c < len(s.req.Codecs); c++ {
				s.mark(p.cand[b][c], statusPruned,
					"baseline moves no compressible traffic at this point, so a codec is a no-op: see the codec-free baseline row")
			}
		}
	}
}

// applyFloorVerdicts turns a point's all(m) floor outcomes into prunes,
// per codec branch (a codec can lower the peak by shrinking the offload
// backlog, so each branch gets its own verdict).
func (s *searcher) applyFloorVerdicts(p *pointInfo) {
	for c := range s.req.Codecs {
		probe := p.cand[bAllM][c]
		if probe < 0 {
			continue
		}
		switch {
		case s.status[probe] == statusInvalid:
			s.pruneBranchInvalid(p, c, "codec branch rejected by the simulator: "+s.reason[probe])
		case s.untrainable(probe):
			s.pruneBranch(p, c, fmt.Sprintf(
				"untrainable by monotonicity: vDNN-all(m)%s — the point's memory floor — already exceeds the cap", codecSuffix(s.req.Codecs[c])))
		}
	}
}

// pruneBranch prunes a point's still-pending candidates under one codec.
func (s *searcher) pruneBranch(p *pointInfo, codec int, reason string) {
	for _, row := range p.cand {
		if i := row[codec]; i >= 0 && s.status[i] == statusPending {
			s.mark(i, statusPruned, reason)
		}
	}
}

func (s *searcher) pruneBranchInvalid(p *pointInfo, codec int, reason string) {
	for _, row := range p.cand {
		if i := row[codec]; i >= 0 && s.status[i] == statusPending {
			s.mark(i, statusInvalid, reason)
		}
	}
}

func (s *searcher) pruneIfPending(i int, reason string) {
	if i >= 0 && s.status[i] == statusPending {
		s.mark(i, statusPruned, reason)
	}
}

// pruneUntrainable prunes a candidate and records the stronger fact that it
// is known untrainable (not merely unable to win), so further monotonicity
// rules can chain off it.
func (s *searcher) pruneUntrainable(i int, reason string) {
	if i < 0 {
		return
	}
	s.dead[i] = true
	if s.status[i] == statusPending {
		s.mark(i, statusPruned, reason)
	}
}

func (s *searcher) mark(i, status int, reason string) {
	s.status[i] = status
	s.reason[i] = reason
	switch status {
	case statusPruned:
		s.counters.Pruned++
	case statusInvalid:
		s.counters.Invalid++
	}
}

func (s *searcher) net(batch int) (*dnn.Network, error) {
	if e, ok := s.nets[batch]; ok {
		return e.net, e.err
	}
	n, err := s.env.Net(batch)
	s.nets[batch] = netEntry{n, err}
	return n, err
}

// evaluate runs the pending candidates among idxs as one engine batch.
// Per-candidate simulator rejections become invalid evidence rows and the
// search continues; cancellation aborts the whole search.
func (s *searcher) evaluate(ctx context.Context, idxs []int) error {
	var jobs []sweep.Job
	var kept []int
	for _, i := range idxs {
		if s.status[i] != statusPending {
			continue
		}
		c := s.cands[i]
		net, err := s.net(c.PerDevBatch)
		if err != nil {
			s.mark(i, statusInvalid, fmt.Sprintf("network at batch %d: %v", c.PerDevBatch, err))
			continue
		}
		jobs = append(jobs, sweep.Job{Net: net, Cfg: c.Config(s.req.Spec, s.req.Topology)})
		kept = append(kept, i)
	}
	if len(jobs) == 0 {
		return nil
	}
	res, err := s.env.Run(ctx, jobs)
	if aborted := s.searchAborted(ctx, err); aborted != nil {
		return aborted
	}
	for j, i := range kept {
		if res == nil || j >= len(res) || res[j] == nil {
			s.mark(i, statusInvalid, fmt.Sprintf("simulation rejected the configuration: %v", err))
			continue
		}
		s.res[i] = res[j]
		s.status[i] = statusEvaluated
		if !res[j].Trainable {
			s.dead[i] = true
		}
		s.counters.Evaluated++
	}
	return nil
}

// evaluateCascade evaluates the pending candidates among idxs, probing each
// pipeline micro-batch ladder finest-first. A pipeline stage keeps a fixed,
// stages-deep window of in-flight micro-batches, so its peak memory scales
// with the micro-batch size Batch/M plus m-independent weight and gradient
// state: coarser micro-batching (smaller M) never needs less memory. An
// untrainable verdict at M therefore condemns every coarser sibling of the
// same (shape, policy, algo, codec) ladder without a simulation.
func (s *searcher) evaluateCascade(ctx context.Context, idxs []int) error {
	type ladderKey struct {
		devices, stages int
		policy          core.Policy
		algo            core.AlgoMode
		comp            compress.Config
	}
	ladders := map[ladderKey][]int{}
	var order []ladderKey
	var flat []int
	for _, i := range idxs {
		c := s.cands[i]
		if c.Stages <= 1 {
			flat = append(flat, i)
			continue
		}
		k := ladderKey{c.Devices, c.Stages, c.Policy, c.Algo, c.Comp}
		if _, ok := ladders[k]; !ok {
			order = append(order, k)
		}
		ladders[k] = append(ladders[k], i)
	}
	depth := 0
	for _, k := range order {
		l := ladders[k]
		sort.Slice(l, func(a, b int) bool { return s.cands[l[a]].MicroBatches > s.cands[l[b]].MicroBatches })
		if len(l) > depth {
			depth = len(l)
		}
	}
	for rung := 0; rung == 0 || rung < depth; rung++ {
		var wave []int
		if rung == 0 {
			wave = append(wave, flat...)
		}
		for _, k := range order {
			if l := ladders[k]; rung < len(l) && s.status[l[rung]] == statusPending {
				wave = append(wave, l[rung])
			}
		}
		if err := s.evaluate(ctx, wave); err != nil {
			return err
		}
		for _, k := range order {
			l := ladders[k]
			if rung >= len(l) || !s.untrainable(l[rung]) {
				continue
			}
			probe := s.cands[l[rung]]
			for _, j := range l[rung+1:] {
				s.dead[j] = true
				if s.status[j] == statusPending {
					s.mark(j, statusPruned, fmt.Sprintf(
						"untrainable by monotonicity: %s%s at M%d — coarser micro-batches only grow per-stage memory — already exceeded the cap",
						PolicyLabel(probe.Policy, probe.Algo), codecSuffix(probe.Comp), probe.MicroBatches))
				}
			}
			ladders[k] = l[:rung+1]
		}
	}
	return nil
}

// searchAborted distinguishes a dead context — which aborts the whole
// search with a consistent ErrCanceled — from per-job rejections, which the
// caller tolerates as invalid evidence rows.
func (s *searcher) searchAborted(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, core.ErrCanceled) {
		return err
	}
	if ctx.Err() != nil {
		return fmt.Errorf("plan: search aborted: %w: %w", core.ErrCanceled, context.Cause(ctx))
	}
	return nil
}

// best returns the index of the trainable candidate with the lowest value
// of the request's objective (step time by default, fleet joules per
// iteration under MinimizeEnergy), ties resolving to the earliest
// (simplest) one; -1 when none train.
func (s *searcher) best() int {
	best := -1
	for i := range s.cands {
		if s.status[i] != statusEvaluated || !s.res[i].Trainable {
			continue
		}
		if best < 0 || s.req.Objective.metric(s.res[i]) < s.req.Objective.metric(s.res[best]) {
			best = i
		}
	}
	return best
}

// refine evaluates the incumbent's neighbors outside the coarse grid: the
// micro-batch counts between pipeline grid lines and the non-power-of-two
// replica counts adjacent to a data-parallel incumbent. Refined candidates
// keep the incumbent's policy, algorithm and codec — the point-local
// winners — and enter the evidence table after the space.
func (s *searcher) refine(ctx context.Context, best int) error {
	inc := s.cands[best]
	inSpace := map[modePoint]bool{}
	for i := range s.points {
		inSpace[s.points[i].pt] = true
	}

	var shapes []modePoint
	switch {
	case inc.Stages > 1:
		for _, m := range []int{inc.MicroBatches / 2, inc.MicroBatches * 2} {
			pt := modePoint{devices: 1, stages: inc.Stages, micro: m}
			if m >= inc.Stages && m <= s.req.Batch && s.req.Batch%m == 0 && !inSpace[pt] {
				shapes = append(shapes, pt)
			}
		}
	case inc.Devices > 1:
		for d := inc.Devices/2 + 1; d < inc.Devices*2; d++ {
			pt := modePoint{devices: d, stages: 1}
			if d >= 2 && d != inc.Devices && d <= s.req.MaxDevices && s.req.Batch%d == 0 && !inSpace[pt] {
				shapes = append(shapes, pt)
			}
		}
	}

	var jobs []sweep.Job
	var cands []Candidate
	for _, pt := range shapes {
		c := Candidate{
			Index:        len(s.cands) + len(cands),
			Devices:      pt.devices,
			Stages:       pt.stages,
			MicroBatches: pt.micro,
			PerDevBatch:  s.req.Batch / pt.devices,
			Policy:       inc.Policy,
			Algo:         inc.Algo,
			Comp:         inc.Comp,
			Refined:      true,
		}
		net, err := s.net(c.PerDevBatch)
		if err != nil {
			continue
		}
		jobs = append(jobs, sweep.Job{Net: net, Cfg: c.Config(s.req.Spec, s.req.Topology)})
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return nil
	}
	res, err := s.env.Run(ctx, jobs)
	if aborted := s.searchAborted(ctx, err); aborted != nil {
		return aborted
	}
	for j, c := range cands {
		s.cands = append(s.cands, c)
		if res == nil || j >= len(res) || res[j] == nil {
			s.status = append(s.status, statusInvalid)
			s.reason = append(s.reason, fmt.Sprintf("simulation rejected the refined configuration: %v", err))
			s.res = append(s.res, nil)
			s.counters.Invalid++
			continue
		}
		s.status = append(s.status, statusEvaluated)
		s.reason = append(s.reason, "")
		s.res = append(s.res, res[j])
		s.counters.Evaluated++
		s.counters.Refined++
	}
	return nil
}

func (s *searcher) plan() (*Plan, error) {
	p := &Plan{
		Network:   s.req.Network,
		Batch:     s.req.Batch,
		Objective: s.req.Objective,
		Counters:  s.counters,
		Evidence:  make([]Evidence, len(s.cands)),
	}
	for i, c := range s.cands {
		ev := Evidence{Candidate: c, Reason: s.reason[i]}
		switch s.status[i] {
		case statusEvaluated:
			r := s.res[i]
			ev.Status = StatusEvaluated
			ev.Trainable = r.Trainable
			ev.FailReason = r.FailReason
			if r.Trainable {
				ev.StepMS = float64(r.IterTime) / float64(sim.Millisecond)
				ev.PeakMiB = float64(r.TotalMaxUsage()) / (1 << 20)
				ev.BubbleFraction = r.BubbleFraction
				ev.Imbalance = r.DeviceImbalance()
				ev.EnergyJ = r.Energy.TotalJ()
			}
		case statusPruned:
			ev.Status = StatusPruned
		case statusInvalid:
			ev.Status = StatusInvalid
		default:
			// Unreachable: the final catch-all wave evaluates every pending
			// candidate. Keep the row honest if it ever happens.
			ev.Status = StatusPruned
			ev.Reason = "not reached"
		}
		p.Evidence[i] = ev
	}
	if best := s.best(); best >= 0 {
		c := s.cands[best]
		p.Feasible = true
		p.Best = &c
		p.Config = c.Config(s.req.Spec, s.req.Topology)
		p.Result = s.res[best]
		return p, nil
	}
	return p, ErrInfeasible
}

func codecSuffix(c compress.Config) string {
	if !c.Enabled() {
		return ""
	}
	return " under codec " + codecLabel(c)
}

// Table renders the evidence as a report table: one row per candidate in
// enumeration order, with the winner starred. Under the energy objective an
// energy column appears between step time and peak memory; time-objective
// tables keep their historical columns byte for byte.
func (p *Plan) Table() *report.Table {
	energy := p.Objective == MinimizeEnergy
	headers := []string{"", "mode", "policy", "codec", "status", "step ms"}
	aligns := []report.Align{report.Left, report.Left, report.Left, report.Left, report.Left, report.Right}
	if energy {
		headers = append(headers, "joules")
		aligns = append(aligns, report.Right)
	}
	headers = append(headers, "peak MiB", "bubble", "imbal", "why / fail")
	aligns = append(aligns, report.Right, report.Right, report.Right, report.Left)
	t := report.NewTable(
		fmt.Sprintf("Planner evidence — %s, batch %d", p.Network, p.Batch), headers...)
	t.SetAligns(aligns...)
	blanks := func(row []string) []string {
		for len(row) < len(headers)-1 {
			row = append(row, "-")
		}
		return row
	}
	for _, ev := range p.Evidence {
		star := ""
		if p.Best != nil && ev.Candidate.Index == p.Best.Index {
			star = "*"
		}
		row := []string{star, ev.Candidate.Mode(), ev.Candidate.PolicyLabel(), ev.Candidate.CodecLabel(), ev.Status}
		switch {
		case ev.Status == StatusEvaluated && ev.Trainable:
			row = append(row, fmt.Sprintf("%.1f", ev.StepMS))
			if energy {
				row = append(row, fmt.Sprintf("%.2f", ev.EnergyJ))
			}
			row = append(row,
				fmt.Sprintf("%.0f", ev.PeakMiB),
				fmt.Sprintf("%.2f", ev.BubbleFraction), fmt.Sprintf("%.2f", ev.Imbalance), "")
		case ev.Status == StatusEvaluated:
			row = append(blanks(row), "untrainable: "+ev.FailReason)
		default:
			row = append(blanks(row), ev.Reason)
		}
		t.AddRow(row...)
	}
	t.AddNote("space %d: %d evaluated (%d refined), %d pruned unevaluated, %d invalid; feasible=%v",
		p.Counters.Space, p.Counters.Evaluated, p.Counters.Refined,
		p.Counters.Pruned, p.Counters.Invalid, p.Feasible)
	return t
}

package plan_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"vdnn/internal/core"
	"vdnn/internal/dnn"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
	"vdnn/internal/pcie"
	"vdnn/internal/plan"
	"vdnn/internal/sweep"
)

// testEnv builds a planner environment over a fresh engine with a per-batch
// network memo, the way vdnn.Simulator wires it in production.
func testEnv(name string, workers int) plan.Env {
	eng := sweep.NewEngine(workers)
	nets := map[int]*dnn.Network{}
	return plan.Env{
		Net: func(batch int) (*dnn.Network, error) {
			if n, ok := nets[batch]; ok {
				return n, nil
			}
			n, err := networks.ByName(name, batch)
			if err == nil {
				nets[batch] = n
			}
			return n, err
		},
		Run: eng.RunAll,
	}
}

// exhaustive runs the full candidate space of a request and returns the
// argmin index under the planner's own rule — lowest step time, ties to the
// earliest candidate — or -1 when nothing trains. Candidates the simulator
// rejects are skipped, exactly as the planner records them invalid.
func exhaustive(t *testing.T, req plan.Request, env plan.Env) (int, []*core.Result) {
	t.Helper()
	req2 := req
	if req2.MaxDevices == 0 {
		req2.MaxDevices = plan.DefaultMaxDevices
	}
	cands := req2.Candidates()
	jobs := make([]sweep.Job, 0, len(cands))
	kept := make([]int, 0, len(cands))
	spec := req.Spec
	if spec == (gpu.Spec{}) {
		spec = gpu.TitanX()
	}
	if req.MemCapBytes > 0 {
		spec = spec.WithMemory(req.MemCapBytes)
	}
	for i, c := range cands {
		net, err := env.Net(c.PerDevBatch)
		if err != nil {
			continue
		}
		jobs = append(jobs, sweep.Job{Net: net, Cfg: c.Config(spec, pcie.SharedGen3Root())})
		kept = append(kept, i)
	}
	res, err := sweep.NewEngine(4).RunAll(context.Background(), jobs)
	if err != nil && !anyResult(res) {
		t.Fatalf("exhaustive sweep: %v", err)
	}
	byIdx := make([]*core.Result, len(cands))
	best := -1
	for j, i := range kept {
		if res[j] == nil {
			continue
		}
		byIdx[i] = res[j]
		if !res[j].Trainable {
			continue
		}
		if best < 0 || res[j].IterTime < byIdx[best].IterTime {
			best = i
		}
	}
	return best, byIdx
}

func anyResult(res []*core.Result) bool {
	for _, r := range res {
		if r != nil {
			return true
		}
	}
	return false
}

// TestSearchMatchesExhaustiveArgmin is the planner's optimality property:
// on spaces small enough to sweep, Search returns exactly the argmin an
// exhaustive RunAll over Request.Candidates would pick — across a loose cap
// (baseline dominates everywhere), tight caps (offload policies win), and
// an impossible cap (both sides agree on infeasible). Batch 8 admits no
// off-grid refinement shapes, so the planner's space is exactly the
// enumerated one.
func TestSearchMatchesExhaustiveArgmin(t *testing.T) {
	for _, tc := range []struct {
		name  string
		capMB int64
	}{
		{"loose-12GB", 0},
		{"tight-500MB", 500},
		{"tight-550MB", 550},
		{"infeasible-470MB", 470},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := plan.Request{Network: "alexnet", Batch: 8, MaxDevices: 4, MemCapBytes: tc.capMB << 20}
			env := testEnv("alexnet", 4)
			p, err := plan.Search(context.Background(), req, env)
			if p == nil {
				t.Fatalf("Search returned nil plan (err %v)", err)
			}
			if p.Counters.Refined != 0 {
				t.Fatalf("refinement fired on a space chosen to have no off-grid neighbors: %+v", p.Counters)
			}
			wantBest, results := exhaustive(t, req, env)

			if wantBest < 0 {
				if !errors.Is(err, plan.ErrInfeasible) {
					t.Fatalf("exhaustive sweep found nothing trainable, Search returned err=%v best=%+v", err, p.Best)
				}
				if p.Feasible || p.Best != nil {
					t.Fatalf("infeasible plan claims feasible=%v best=%+v", p.Feasible, p.Best)
				}
				return
			}
			if err != nil {
				t.Fatalf("Search: %v (exhaustive argmin exists: %d)", err, wantBest)
			}
			if p.Best == nil || p.Best.Index != wantBest {
				t.Fatalf("Search picked %+v, exhaustive argmin is candidate %d (%s %s %s, %.1fms)",
					p.Best, wantBest,
					req.Candidates()[wantBest].Mode(), req.Candidates()[wantBest].PolicyLabel(),
					req.Candidates()[wantBest].CodecLabel(),
					float64(results[wantBest].IterTime)/1e6)
			}
			if p.Result.IterTime != results[wantBest].IterTime {
				t.Fatalf("winner step time %v != exhaustive %v", p.Result.IterTime, results[wantBest].IterTime)
			}

			// Soundness of every prune: no pruned candidate may beat the
			// winner, and every "untrainable by monotonicity" prune must
			// actually be untrainable.
			for i, ev := range p.Evidence {
				if ev.Status != plan.StatusPruned || results[i] == nil {
					continue
				}
				if results[i].Trainable && results[i].IterTime < p.Result.IterTime {
					t.Errorf("pruned candidate %d (%s %s %s, reason %q) beats the winner: %.1fms < %.1fms",
						i, ev.Candidate.Mode(), ev.Candidate.PolicyLabel(), ev.Candidate.CodecLabel(), ev.Reason,
						float64(results[i].IterTime)/1e6, float64(p.Result.IterTime)/1e6)
				}
			}
		})
	}
}

// TestSearchNeverViolatesCap: any plan the search returns must be trainable
// under the capped spec, with the pool peak inside the cap.
func TestSearchNeverViolatesCap(t *testing.T) {
	for _, capMB := range []int64{500, 550, 600, 12 << 10} {
		req := plan.Request{Network: "alexnet", Batch: 8, MaxDevices: 4, MemCapBytes: capMB << 20}
		p, err := plan.Search(context.Background(), req, testEnv("alexnet", 4))
		if errors.Is(err, plan.ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("cap %dMB: %v", capMB, err)
		}
		if !p.Result.Trainable {
			t.Fatalf("cap %dMB: winner is untrainable: %s", capMB, p.Result.FailReason)
		}
		if p.Result.MaxUsage > capMB<<20 {
			t.Fatalf("cap %dMB: winner pool peak %d bytes exceeds the cap", capMB, p.Result.MaxUsage)
		}
		if p.Config.Spec.MemBytes != capMB<<20 {
			t.Fatalf("cap %dMB: winning config spec has %d bytes of memory", capMB, p.Config.Spec.MemBytes)
		}
	}
}

// TestSearchDeterministic: same request, same plan — winner, evidence table
// and counters all byte-for-byte equal across runs on fresh engines.
func TestSearchDeterministic(t *testing.T) {
	req := plan.Request{Network: "alexnet", Batch: 8, MaxDevices: 4, MemCapBytes: 550 << 20}
	a, errA := plan.Search(context.Background(), req, testEnv("alexnet", 4))
	b, errB := plan.Search(context.Background(), req, testEnv("alexnet", 1))
	if (errA == nil) != (errB == nil) {
		t.Fatalf("errors diverge: %v vs %v", errA, errB)
	}
	if a.Counters != b.Counters {
		t.Fatalf("counters diverge: %+v vs %+v", a.Counters, b.Counters)
	}
	if (a.Best == nil) != (b.Best == nil) {
		t.Fatalf("winners diverge: %+v vs %+v", a.Best, b.Best)
	}
	if a.Best != nil && *a.Best != *b.Best {
		t.Fatalf("winners diverge: %+v vs %+v", *a.Best, *b.Best)
	}
	if len(a.Evidence) != len(b.Evidence) {
		t.Fatalf("evidence length diverges: %d vs %d", len(a.Evidence), len(b.Evidence))
	}
	for i := range a.Evidence {
		ea, eb := a.Evidence[i], b.Evidence[i]
		if ea != eb {
			t.Fatalf("evidence row %d diverges:\n  %+v\n  %+v", i, ea, eb)
		}
	}
}

// TestSearchEvidenceCoversSpace: every candidate of the space appears in
// the evidence with a final status, and the counters add up.
func TestSearchEvidenceCoversSpace(t *testing.T) {
	req := plan.Request{Network: "alexnet", Batch: 8, MaxDevices: 4}
	p, err := plan.Search(context.Background(), req, testEnv("alexnet", 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Evidence) != p.Counters.Space+p.Counters.Refined {
		t.Fatalf("evidence rows %d != space %d + refined %d",
			len(p.Evidence), p.Counters.Space, p.Counters.Refined)
	}
	if got := p.Counters.Evaluated + p.Counters.Pruned + p.Counters.Invalid; got != len(p.Evidence) {
		t.Fatalf("counters sum %d != evidence rows %d (%+v)", got, len(p.Evidence), p.Counters)
	}
	for i, ev := range p.Evidence {
		if ev.Candidate.Index != i {
			t.Fatalf("evidence row %d carries candidate index %d", i, ev.Candidate.Index)
		}
		switch ev.Status {
		case plan.StatusEvaluated:
		case plan.StatusPruned, plan.StatusInvalid:
			if ev.Reason == "" {
				t.Fatalf("row %d is %s with no reason", i, ev.Status)
			}
		default:
			t.Fatalf("row %d has status %q", i, ev.Status)
		}
	}
}

// TestSearchRefinement: on a batch with non-power-of-two divisors the
// planner evaluates off-grid neighbors of the incumbent, and they only ever
// improve the result relative to the coarse space's argmin.
func TestSearchRefinement(t *testing.T) {
	req := plan.Request{Network: "alexnet", Batch: 24, MaxDevices: 4}
	env := testEnv("alexnet", 4)
	p, err := plan.Search(context.Background(), req, env)
	if err != nil {
		t.Fatal(err)
	}
	wantBest, results := exhaustive(t, req, env)
	if wantBest < 0 {
		t.Fatal("exhaustive sweep found nothing trainable")
	}
	if p.Result.IterTime > results[wantBest].IterTime {
		t.Fatalf("planner winner %.1fms is worse than the space argmin %.1fms",
			float64(p.Result.IterTime)/1e6, float64(results[wantBest].IterTime)/1e6)
	}
	if p.Best.Refined {
		if p.Result.IterTime >= results[wantBest].IterTime {
			t.Fatalf("refined winner must strictly beat the space argmin: %.1fms vs %.1fms",
				float64(p.Result.IterTime)/1e6, float64(results[wantBest].IterTime)/1e6)
		}
	} else if p.Best.Index != wantBest {
		t.Fatalf("unrefined winner %d != space argmin %d", p.Best.Index, wantBest)
	}
	for _, ev := range p.Evidence {
		if ev.Candidate.Refined && ev.Status == plan.StatusEvaluated && p.Counters.Refined == 0 {
			t.Fatalf("refined evidence row without a refined counter: %+v", ev)
		}
	}
}

// TestSearchCancel: canceling the context mid-search aborts promptly with
// ErrCanceled and leaks no goroutines.
func TestSearchCancel(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	env := testEnv("vgg16", 2)
	inner := env.Run
	calls := 0
	env.Run = func(ctx context.Context, jobs []sweep.Job) ([]*core.Result, error) {
		calls++
		if calls == 2 {
			cancel()
		}
		return inner(ctx, jobs)
	}
	req := plan.Request{Network: "vgg16", Batch: 64, MaxDevices: 2}
	start := time.Now()
	p, err := plan.Search(ctx, req, env)
	if err == nil || !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if p != nil {
		t.Fatalf("canceled search still returned a plan: %+v", p.Counters)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines before %d, after %d:\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRequestValidation: malformed requests fail fast, before any
// simulation.
func TestRequestValidation(t *testing.T) {
	env := testEnv("alexnet", 1)
	for _, req := range []plan.Request{
		{Network: "", Batch: 8},
		{Network: "alexnet", Batch: 0},
		{Network: "alexnet", Batch: 8, MaxDevices: plan.MaxBudget + 1},
		{Network: "alexnet", Batch: 8, MemCapBytes: -1},
	} {
		if _, err := plan.Search(context.Background(), req, env); err == nil {
			t.Errorf("request %+v validated", req)
		}
	}
	if _, err := plan.Search(context.Background(), plan.Request{Network: "alexnet", Batch: 8}, plan.Env{}); err == nil {
		t.Error("empty environment validated")
	}
}

// TestCrossRowMajor: the shared sweep enumerator walks the cartesian
// product with the first axis slowest, matching table row/column indexing.
func TestCrossRowMajor(t *testing.T) {
	// Abuse the free-form StageCuts string as a trace of the applied
	// variants.
	tag := func(k, v string) plan.Variant {
		return plan.Variant{Label: v, Apply: func(c core.Config) core.Config {
			c.StageCuts += k + "=" + v + ";"
			return c
		}}
	}
	cfgs := plan.Cross(core.Config{},
		plan.Axis{tag("a", "0"), tag("a", "1")},
		plan.Axis{tag("b", "0"), tag("b", "1"), tag("b", "2")})
	if len(cfgs) != 6 {
		t.Fatalf("Cross produced %d configs, want 6", len(cfgs))
	}
	want := []string{"a=0;b=0;", "a=0;b=1;", "a=0;b=2;", "a=1;b=0;", "a=1;b=1;", "a=1;b=2;"}
	for i, cfg := range cfgs {
		if cfg.StageCuts != want[i] {
			t.Errorf("cfg[%d] = %q, want %q", i, cfg.StageCuts, want[i])
		}
	}
}

// TestCandidatesDeterministic: the space enumeration is stable and densely
// indexed.
func TestCandidatesDeterministic(t *testing.T) {
	req := plan.Request{Network: "vgg16", Batch: 256, MaxDevices: 4, MemCapBytes: 16 << 30}
	a, b := req.Candidates(), req.Candidates()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("enumeration lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidate %d diverges: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Index != i {
			t.Fatalf("candidate %d carries index %d", i, a[i].Index)
		}
	}
}

func ExampleRequest_Candidates() {
	req := plan.Request{Network: "alexnet", Batch: 8, MaxDevices: 2}
	cands := req.Candidates()
	fmt.Println(len(cands), "candidates;", cands[0].Mode(), cands[0].PolicyLabel(), cands[0].CodecLabel())
	// Output: 64 candidates; single base(p) none
}

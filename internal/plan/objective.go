package plan

import (
	"fmt"
	"strings"

	"vdnn/internal/core"
)

// Objective selects the metric the planner minimizes over trainable
// candidates.
//
// The pruning waves are objective-independent: they discard candidates for
// untrainability or because a same-point sibling dominates them under the
// linear cost/power model, and those dominations hold for energy exactly as
// for time (within one parallelism point, less offload traffic means both
// less copy/DRAM energy and a shorter idle-floor window). Divergence between
// the objectives is cross-point — e.g. data parallelism can win on step time
// while paying N idle floors plus all-reduce energy, losing on joules to a
// single vDNN device — and every parallelism point survives pruning, so the
// winner under either objective is the true optimum of the searched space.
type Objective int

const (
	// MinimizeTime picks the lowest step time — the default and the zero
	// value, so existing requests and wire payloads are unchanged.
	MinimizeTime Objective = iota
	// MinimizeEnergy picks the lowest whole-fleet energy per iteration
	// (Result.Energy.TotalJ(), summed over every device of the candidate).
	MinimizeEnergy
)

// MarshalText encodes the objective as "time" or "energy".
func (o Objective) MarshalText() ([]byte, error) {
	switch o {
	case MinimizeTime:
		return []byte("time"), nil
	case MinimizeEnergy:
		return []byte("energy"), nil
	}
	return nil, fmt.Errorf("plan: cannot marshal unknown objective %d", int(o))
}

// UnmarshalText decodes an objective token. Accepted (case-insensitive):
// "time"/"step-time" and "energy"/"joules".
func (o *Objective) UnmarshalText(text []byte) error {
	switch strings.ToLower(strings.TrimSpace(string(text))) {
	case "", "time", "step-time":
		*o = MinimizeTime
	case "energy", "joules":
		*o = MinimizeEnergy
	default:
		return fmt.Errorf("plan: unknown objective %q (want time or energy)", text)
	}
	return nil
}

// Set implements flag.Value.
func (o *Objective) Set(s string) error { return o.UnmarshalText([]byte(s)) }

// String returns the canonical token.
func (o Objective) String() string {
	b, err := o.MarshalText()
	if err != nil {
		return fmt.Sprintf("Objective(%d)", int(o))
	}
	return string(b)
}

// metric returns the candidate score the objective minimizes.
func (o Objective) metric(r *core.Result) float64 {
	if o == MinimizeEnergy {
		return r.Energy.TotalJ()
	}
	return float64(r.IterTime)
}

// Package plan implements the auto-parallelism planner: a pruned
// design-space search that, given a workload (network name, global batch
// size) and a fleet description (GPU model, device-count budget, topology,
// per-device memory cap), finds the trainable configuration minimizing the
// requested objective — step time by default, or whole-fleet energy per
// iteration — across data parallelism, pipeline parallelism, the vDNN
// offload policies, convolution algorithm modes and the compressed-DMA
// codecs.
//
// Candidates execute through the caller-supplied batch runner — in practice
// vdnn.Simulator.RunBatch — so every evaluation lands in the shared result
// cache, coalesces with concurrent identical requests, cancels with the
// caller's context and is reachable by the chaos harness like any other
// simulation.
//
// The search is smarter than exhaustive (see Search), but the *space* it
// searches is a plain deterministic enumeration (Request.Candidates), which
// is what the optimality tests sweep exhaustively to check the pruning
// logic never discards a winner.
package plan

import (
	"fmt"

	"vdnn/internal/compress"
	"vdnn/internal/core"
	"vdnn/internal/gpu"
	"vdnn/internal/pcie"
)

// ---------------------------------------------------------------------------
// Sweep-axis enumeration, shared with cmd/vdnn-explore.
//
// A sweep dimension is an Axis: an ordered list of labeled Config
// mutations. Cross enumerates the cartesian product of axes over a base
// configuration — the one config-generation loop behind both the planner's
// per-point candidate batteries and vdnn-explore's what-if sweeps.

// Variant is one value of a sweep Axis: a display label plus the Config
// mutation selecting it.
type Variant struct {
	Label string
	Apply func(core.Config) core.Config
}

// Axis is one sweep dimension: its values in presentation order.
type Axis []Variant

// Cross enumerates base across the axes' cartesian product in row-major
// order: the first axis varies slowest, the last fastest. With axes
// {A, B} the result is A0B0, A0B1, ..., A1B0, ... — so a table with one row
// per A-value and one column per B-value indexes results as [i*len(B)+j].
func Cross(base core.Config, axes ...Axis) []core.Config {
	cfgs := []core.Config{base}
	for _, axis := range axes {
		next := make([]core.Config, 0, len(cfgs)*len(axis))
		for _, cfg := range cfgs {
			for _, v := range axis {
				next = append(next, v.Apply(cfg))
			}
		}
		cfgs = next
	}
	return cfgs
}

// PolicyVariant selects a memory-management policy and algorithm mode.
func PolicyVariant(p core.Policy, a core.AlgoMode) Variant {
	return Variant{Label: PolicyLabel(p, a), Apply: func(c core.Config) core.Config {
		c.Policy, c.Algo = p, a
		return c
	}}
}

// CapacityVariant resizes the device's physical memory.
func CapacityVariant(bytes int64) Variant {
	return Variant{Label: fmt.Sprintf("%dGB", bytes>>30), Apply: func(c core.Config) core.Config {
		c.Spec = c.Spec.WithMemory(bytes)
		return c
	}}
}

// PrefetchVariant selects a prefetch schedule.
func PrefetchVariant(m core.PrefetchMode) Variant {
	return Variant{Label: m.String(), Apply: func(c core.Config) core.Config {
		c.Prefetch = m
		return c
	}}
}

// CodecVariant selects a compressed-DMA codec and sparsity profile.
func CodecVariant(codec compress.Codec, sparsity string) Variant {
	return Variant{Label: codecLabel(compress.Config{Codec: codec, Sparsity: sparsity}),
		Apply: func(c core.Config) core.Config {
			c.Compression = compress.Config{Codec: codec, Sparsity: sparsity}
			return c
		}}
}

// DevicesVariant selects a data-parallel replica count on a topology.
func DevicesVariant(devices int, top pcie.Topology) Variant {
	return Variant{Label: fmt.Sprintf("%dx", devices), Apply: func(c core.Config) core.Config {
		c.Devices, c.Topology = devices, top
		return c
	}}
}

// PipelineVariant selects a pipeline shape on a topology (stages == 1 is
// the single-device reference; microBatches 0 takes the default).
func PipelineVariant(stages, microBatches int, top pcie.Topology) Variant {
	label := fmt.Sprintf("%ds", stages)
	if microBatches > 0 {
		label = fmt.Sprintf("%dsxM%d", stages, microBatches)
	}
	return Variant{Label: label, Apply: func(c core.Config) core.Config {
		c.Stages, c.MicroBatches = stages, microBatches
		if stages > 1 {
			c.Topology = top
		}
		return c
	}}
}

// PolicyLabel renders the paper's shorthand for a policy/mode pair:
// "base(p)", "all(m)", "dyn".
func PolicyLabel(p core.Policy, a core.AlgoMode) string {
	switch p {
	case core.Baseline:
		return "base" + a.String()
	case core.VDNNAll:
		return "all" + a.String()
	case core.VDNNConv:
		return "conv" + a.String()
	case core.VDNNDyn:
		return "dyn"
	}
	return p.String() + a.String()
}

func codecLabel(c compress.Config) string {
	if c.Codec == compress.CodecNone {
		return "none"
	}
	return c.WithDefaults().Codec.String() + ":" + c.WithDefaults().Sparsity
}

// ---------------------------------------------------------------------------
// The planner's candidate space.

// Request describes one planning problem: the workload, the fleet and the
// memory cap the winner must respect.
type Request struct {
	// Network is the benchmark network name (see networks.Names).
	Network string
	// Batch is the global batch size of one training step. Data-parallel
	// candidates split it evenly across replicas; pipeline candidates
	// stream it through the stages as micro-batches.
	Batch int

	// Spec is the fleet's GPU model (the zero value selects the paper's
	// Titan X). MemCapBytes, when set, overrides its physical memory — the
	// hard per-device cap every returned configuration must train under.
	Spec        gpu.Spec
	MemCapBytes int64

	// MaxDevices is the device-count budget (default 4, max 16): the
	// search considers data-parallel replica counts and pipeline stage
	// counts up to it.
	MaxDevices int

	// Topology is the interconnect of multi-device candidates (the zero
	// value defaults to the shared gen3 x16 root complex, the worst case).
	Topology pcie.Topology

	// Codecs are the compressed-DMA settings to search (default: no codec,
	// plus ZVC on the cDMA sparsity profile). A codec-free branch is always
	// searched.
	Codecs []compress.Config

	// Objective selects what the search minimizes: step time (the zero
	// value, the historical behavior) or whole-fleet energy per iteration
	// (see Objective). The candidate space and the pruning waves are
	// identical either way — only the final comparison changes — so an
	// unset objective plans exactly as before.
	Objective Objective
}

// MaxBudget is the largest MaxDevices a Request may ask for.
const MaxBudget = 16

// DefaultMaxDevices is the device budget when the request leaves it unset.
const DefaultMaxDevices = 4

// withDefaults resolves unset fields; validate reports the first invalid one.
func (r Request) withDefaults() Request {
	if r.Spec == (gpu.Spec{}) {
		r.Spec = gpu.TitanX()
	}
	if r.MemCapBytes > 0 {
		r.Spec = r.Spec.WithMemory(r.MemCapBytes)
	}
	if r.MaxDevices == 0 {
		r.MaxDevices = DefaultMaxDevices
	}
	if r.Topology == (pcie.Topology{}) {
		r.Topology = pcie.SharedGen3Root()
	}
	// Normalize the codec list: the codec-free branch always exists and
	// always comes first (it anchors the domination probe and the tie-break
	// order); duplicates collapse. An empty request searches ZVC on its
	// default sparsity profile alongside the codec-free branch.
	requested := r.Codecs
	if len(requested) == 0 {
		requested = []compress.Config{{Codec: compress.CodecZVC}}
	}
	codecs := []compress.Config{{}}
	seen := map[compress.Config]bool{{}: true}
	for _, c := range requested {
		c = c.WithDefaults()
		if !seen[c] {
			seen[c] = true
			codecs = append(codecs, c)
		}
	}
	r.Codecs = codecs
	return r
}

func (r Request) validate() error {
	if r.Network == "" {
		return fmt.Errorf("plan: request needs a network name")
	}
	if r.Batch <= 0 {
		return fmt.Errorf("plan: batch must be positive, got %d", r.Batch)
	}
	if r.MaxDevices < 1 || r.MaxDevices > MaxBudget {
		return fmt.Errorf("plan: max devices must be in [1, %d], got %d", MaxBudget, r.MaxDevices)
	}
	if r.MemCapBytes < 0 {
		return fmt.Errorf("plan: memory cap must be non-negative, got %d", r.MemCapBytes)
	}
	for _, c := range r.Codecs {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("plan: %w", err)
		}
	}
	return r.Spec.Validate()
}

// modePoint is one parallelism shape: how the global batch maps onto
// devices. Exactly one of devices > 1 or stages > 1 holds (both 1 is the
// single-device point).
type modePoint struct {
	devices, stages, micro int
}

func (m modePoint) String() string {
	switch {
	case m.stages > 1:
		return fmt.Sprintf("pipe %dxM%d", m.stages, m.micro)
	case m.devices > 1:
		return fmt.Sprintf("dp %dx", m.devices)
	}
	return "single"
}

// modePoints enumerates the coarse parallelism grid, in evidence order:
// the single device, data-parallel replica counts (powers of two dividing
// the batch, up to the budget), then pipeline shapes (power-of-two stage
// counts up to the budget, micro-batch counts s, 2s and 4s that divide the
// batch). Equal-size splits only: a count that does not divide the batch is
// not a candidate.
func (r Request) modePoints() []modePoint {
	points := []modePoint{{devices: 1, stages: 1}}
	for d := 2; d <= r.MaxDevices; d *= 2 {
		if r.Batch%d == 0 {
			points = append(points, modePoint{devices: d, stages: 1})
		}
	}
	for s := 2; s <= r.MaxDevices; s *= 2 {
		for _, m := range []int{s, 2 * s, 4 * s} {
			if m <= r.Batch && r.Batch%m == 0 {
				points = append(points, modePoint{devices: 1, stages: s, micro: m})
			}
		}
	}
	return points
}

// battery is the per-point policy/algorithm order. The first two entries
// are the search's probes: base(p) — the fastest possible configuration at
// a point when it trains, which time-dominates every offload policy there —
// and all(m), the point's memory floor, whose failure proves every sibling
// untrainable. Performance-optimal rows precede their memory-optimal
// siblings: (m) is never faster than (p) at the same policy, so when (p)
// trains, (m) can be pruned — and because (m) sits later in the order, the
// tie-break agrees. The dynamic policy closes the list (pipeline points
// skip it: dyn profiles a whole-network schedule, which the per-stage
// planner does not model).
var battery = []struct {
	p core.Policy
	a core.AlgoMode
}{
	{core.Baseline, core.PerfOptimal},
	{core.VDNNAll, core.MemOptimal},
	{core.VDNNAll, core.PerfOptimal},
	{core.VDNNConv, core.PerfOptimal},
	{core.VDNNConv, core.MemOptimal},
	{core.Baseline, core.MemOptimal},
	{core.VDNNDyn, 0},
}

// Candidate is one point of the design space.
type Candidate struct {
	// Index is the candidate's position in the deterministic space
	// enumeration; refined candidates are appended after the space.
	Index int `json:"index"`

	Devices      int `json:"devices"`                 // data-parallel replicas (1 otherwise)
	Stages       int `json:"stages"`                  // pipeline stages (1 otherwise)
	MicroBatches int `json:"micro_batches,omitempty"` // pipeline micro-batches (0 otherwise)
	// PerDevBatch is the minibatch one replica trains (Batch/Devices).
	PerDevBatch int `json:"per_device_batch"`

	Policy core.Policy     `json:"policy"`
	Algo   core.AlgoMode   `json:"algo"`
	Comp   compress.Config `json:"compression,omitempty"`

	// Refined marks a neighborhood-refinement candidate from outside the
	// coarse space enumeration.
	Refined bool `json:"refined,omitempty"`
}

// Mode renders the candidate's parallelism shape ("single", "dp 4x",
// "pipe 4xM16").
func (c Candidate) Mode() string {
	return modePoint{devices: c.Devices, stages: c.Stages, micro: c.MicroBatches}.String()
}

// PolicyLabel renders the candidate's policy/mode shorthand.
func (c Candidate) PolicyLabel() string { return PolicyLabel(c.Policy, c.Algo) }

// CodecLabel renders the candidate's compression setting.
func (c Candidate) CodecLabel() string { return codecLabel(c.Comp) }

// Config materializes the candidate against a fleet spec and topology.
func (c Candidate) Config(spec gpu.Spec, top pcie.Topology) core.Config {
	cfg := core.Config{
		Spec:        spec,
		Policy:      c.Policy,
		Algo:        c.Algo,
		Compression: c.Comp,
	}
	switch {
	case c.Stages > 1:
		cfg.Stages, cfg.MicroBatches, cfg.Topology = c.Stages, c.MicroBatches, top
	case c.Devices > 1:
		cfg.Devices, cfg.Topology = c.Devices, top
	}
	return cfg
}

// Candidates enumerates the full coarse design space in deterministic
// order: mode points (see modePoints), then the policy battery, then the
// codec branch — so ties in step time always resolve to the simplest
// configuration (fewest devices, no offload machinery, no codec). This is
// the exact set the optimality tests sweep exhaustively.
func (r Request) Candidates() []Candidate {
	req := r.withDefaults()
	var out []Candidate
	for _, pt := range req.modePoints() {
		for _, pa := range battery {
			if pa.p == core.VDNNDyn && pt.stages > 1 {
				continue
			}
			for _, codec := range req.Codecs {
				out = append(out, Candidate{
					Index:        len(out),
					Devices:      pt.devices,
					Stages:       pt.stages,
					MicroBatches: pt.micro,
					PerDevBatch:  req.Batch / pt.devices,
					Policy:       pa.p,
					Algo:         pa.a,
					Comp:         codec,
				})
			}
		}
	}
	return out
}

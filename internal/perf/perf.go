// Package perf is the profiling harness behind the engine's performance
// work: a thin wrapper over runtime/pprof that captures CPU and heap
// profiles around a workload. The CLIs' -cpuprofile/-memprofile flags and
// the profiling test in this package (which pins the capture path against
// bit-rot and doubles as the canonical "profile a sweep" recipe) share it.
//
// Workflow, end to end:
//
//	go test -run TestProfileSweepWorkload -v ./internal/perf   # profiles under $VDNN_PROFILE_DIR
//	vdnn-repro -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof -top cpu.pprof
//	go tool pprof -sample_index=alloc_space -top mem.pprof
//
// The heap profile is written after a forced GC, so it shows the live set
// plus cumulative allocation counters (alloc_space is the view that drove
// the arena/presizing work in internal/core and internal/sim).
package perf

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session is one in-progress capture. Start it before the workload and Stop
// it after; an empty path disables the corresponding profile.
type Session struct {
	cpuFile *os.File
	memPath string
}

// Start opens the profile outputs and begins CPU sampling. Either path may
// be empty to skip that profile; Start("", "") returns a no-op session.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("perf: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("perf: start cpu profile: %w", err)
		}
		s.cpuFile = f
	}
	return s, nil
}

// Stop ends the session: stops CPU sampling and writes the heap profile.
// Safe to call on a no-op session; not safe to call twice.
func (s *Session) Stop() error {
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil {
			return fmt.Errorf("perf: %w", err)
		}
		s.cpuFile = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			return fmt.Errorf("perf: %w", err)
		}
		defer f.Close()
		runtime.GC() // the profile should show the live set, not the last iteration's garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("perf: write heap profile: %w", err)
		}
	}
	return nil
}

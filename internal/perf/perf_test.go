package perf_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"vdnn/internal/core"
	"vdnn/internal/gpu"
	"vdnn/internal/networks"
	"vdnn/internal/perf"
	"vdnn/internal/sweep"
)

// TestProfileSweepWorkload is the harness's own evidence loop: capture CPU
// and heap profiles of a representative sweep (a capacity ablation over the
// policy grid — the figures' hot path) and check both profiles came out
// non-empty and well-formed. Set VDNN_PROFILE_DIR to keep the profiles for
// `go tool pprof` instead of a test tempdir:
//
//	VDNN_PROFILE_DIR=/tmp go test -run TestProfileSweepWorkload ./internal/perf
//	go tool pprof -top /tmp/cpu.pprof
func TestProfileSweepWorkload(t *testing.T) {
	dir := os.Getenv("VDNN_PROFILE_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")

	s, err := perf.Start(cpuPath, memPath)
	if err != nil {
		t.Fatal(err)
	}

	net := networks.AlexNet(128)
	var jobs []sweep.Job
	for _, memGB := range []int64{2, 4, 6, 8, 12} {
		spec := gpu.TitanX().WithMemory(memGB << 30)
		for _, pa := range []struct {
			p core.Policy
			a core.AlgoMode
		}{
			{core.Baseline, core.PerfOptimal},
			{core.VDNNAll, core.MemOptimal},
			{core.VDNNConv, core.PerfOptimal},
		} {
			jobs = append(jobs, sweep.Job{Net: net, Cfg: core.Config{Spec: spec, Policy: pa.p, Algo: pa.a}})
		}
	}
	if _, err := sweep.NewEngine(2).RunAll(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}

	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpuPath, memPath} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Errorf("%s: empty profile", p)
		}
		// pprof files are gzip-compressed protobufs.
		if len(b) >= 2 && (b[0] != 0x1f || b[1] != 0x8b) {
			t.Errorf("%s: not a gzip-compressed profile (magic %x %x)", p, b[0], b[1])
		}
	}
}

// TestNoopSession checks the disabled path the CLIs take when neither flag
// is set.
func TestNoopSession(t *testing.T) {
	s, err := perf.Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
}

package tensor

import (
	"testing"
	"testing/quick"
)

func TestDTypeSize(t *testing.T) {
	cases := []struct {
		d    DType
		want int64
	}{
		{Float32, 4},
		{Float16, 2},
		{Int8, 1},
	}
	for _, c := range cases {
		if got := c.d.Size(); got != c.want {
			t.Errorf("%v.Size() = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestDTypeString(t *testing.T) {
	if Float32.String() != "float32" || Float16.String() != "float16" || Int8.String() != "int8" {
		t.Errorf("unexpected dtype names: %v %v %v", Float32, Float16, Int8)
	}
}

func TestShapeElemsAndBytes(t *testing.T) {
	s := NCHW(256, 64, 224, 224)
	wantElems := int64(256) * 64 * 224 * 224
	if s.Elems() != wantElems {
		t.Fatalf("Elems = %d, want %d", s.Elems(), wantElems)
	}
	if s.Bytes(Float32) != wantElems*4 {
		t.Fatalf("Bytes = %d, want %d", s.Bytes(Float32), wantElems*4)
	}
	// VGG-16 conv1 output with batch 256 is the paper's canonical 3136 MiB
	// feature map (Section IV / Fig 5 ballpark).
	if mib := MiB(s.Bytes(Float32)); mib < 3135 || mib > 3137 {
		t.Fatalf("VGG conv1 fm = %.1f MiB, want ~3136 MiB", mib)
	}
}

func TestVec(t *testing.T) {
	s := Vec(128, 4096)
	if s.H != 1 || s.W != 1 || s.Elems() != 128*4096 {
		t.Fatalf("Vec shape wrong: %v", s)
	}
}

func TestWithBatch(t *testing.T) {
	s := NCHW(64, 3, 224, 224)
	s2 := s.WithBatch(256)
	if s2.N != 256 || s2.C != 3 || s2.H != 224 || s2.W != 224 {
		t.Fatalf("WithBatch wrong: %v", s2)
	}
	if s.N != 64 {
		t.Fatalf("WithBatch mutated receiver: %v", s)
	}
}

func TestInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NCHW(0,...) did not panic")
		}
	}()
	NCHW(0, 3, 224, 224)
}

func TestConvOutFloor(t *testing.T) {
	cases := []struct {
		in, window, stride, pad int
		want                    int
	}{
		{224, 3, 1, 1, 224}, // VGG 3x3/s1/p1 preserves size
		{224, 2, 2, 0, 112}, // VGG 2x2/s2 pool halves
		{224, 11, 4, 2, 55}, // AlexNet conv1
		{55, 3, 2, 0, 27},   // AlexNet pool1
		{27, 5, 1, 2, 27},   // AlexNet conv2
		{27, 3, 2, 0, 13},   // AlexNet pool2
		{13, 3, 2, 0, 6},    // AlexNet pool5
		{231, 11, 4, 0, 56}, // OverFeat conv1
		{224, 7, 2, 3, 112}, // GoogLeNet conv1
	}
	for _, c := range cases {
		if got := ConvOut(c.in, c.window, c.stride, c.pad, false); got != c.want {
			t.Errorf("ConvOut(%d,%d,%d,%d,floor) = %d, want %d", c.in, c.window, c.stride, c.pad, got, c.want)
		}
	}
}

func TestConvOutCeil(t *testing.T) {
	// GoogLeNet max-pool 3x3/s2 in ceil mode: 112 -> 56 -> 28 -> 14 -> 7.
	for _, c := range []struct{ in, want int }{{112, 56}, {56, 28}, {28, 14}, {14, 7}} {
		if got := ConvOut(c.in, 3, 2, 0, true); got != c.want {
			t.Errorf("ceil pool: ConvOut(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// Floor mode gives one less on even inputs.
	if got := ConvOut(56, 3, 2, 0, false); got != 27 {
		t.Errorf("floor pool: got %d, want 27", got)
	}
}

func TestConvOutCeilClamp(t *testing.T) {
	// When the extra ceil window would start entirely in the padding it must
	// be clamped (Caffe rule). in=4, window=2, stride=3, pad=1:
	// num=4, ceil(4/3)+1=3, but window start (2*3=6) >= in+pad=5 -> clamp to 2.
	if got := ConvOut(4, 2, 3, 1, true); got != 2 {
		t.Errorf("ceil clamp: got %d, want 2", got)
	}
}

func TestConvOutPanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { ConvOut(224, 0, 1, 0, false) },
		func() { ConvOut(224, 3, 0, 0, false) },
		func() { ConvOut(2, 5, 1, 0, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("ConvOut with bad geometry did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		b    int64
		want string
	}{
		{512, "512 B"},
		{2 << 10, "2.0 KB"},
		{3 << 20, "3.0 MB"},
		{28 << 30, "28.00 GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.b); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.b, got, c.want)
		}
	}
}

// Property: Elems is multiplicative and positive for all valid shapes.
func TestShapeElemsProperty(t *testing.T) {
	f := func(n, c, h, w uint8) bool {
		s := Shape{int(n%32) + 1, int(c%64) + 1, int(h%128) + 1, int(w%128) + 1}
		e := s.Elems()
		return e == int64(s.N)*int64(s.C)*int64(s.H)*int64(s.W) && e > 0 &&
			s.Bytes(Float32) == 4*e && s.PerSample()*int64(s.N) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ceil-mode output is >= floor-mode output, and both shrink (or
// preserve) when stride >= window covers the input.
func TestConvOutMonotoneProperty(t *testing.T) {
	f := func(in, window, stride, pad uint8) bool {
		i := int(in) + 8
		w := int(window%7) + 1
		s := int(stride%4) + 1
		p := int(pad % uint8(w)) // pad < window keeps geometry sane
		fl := ConvOut(i, w, s, p, false)
		ce := ConvOut(i, w, s, p, true)
		return ce >= fl && fl >= 1 && ce <= fl+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

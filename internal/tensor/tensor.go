// Package tensor provides shape and size descriptors for the NCHW tensors
// that flow through a neural network. The vDNN simulator never materializes
// tensor values: memory behaviour depends only on shapes, element types and
// the byte sizes derived from them, which is exactly what this package
// models.
package tensor

import "fmt"

// DType identifies the element type of a tensor. The paper's evaluation uses
// single-precision floats throughout (cuDNN 4 training path); FP16 is
// included for capacity what-if experiments.
type DType int

const (
	Float32 DType = iota
	Float16
	Int8
)

// Size returns the size of one element in bytes.
func (d DType) Size() int64 {
	switch d {
	case Float32:
		return 4
	case Float16:
		return 2
	case Int8:
		return 1
	}
	panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
}

func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float16:
		return "float16"
	case Int8:
		return "int8"
	}
	return fmt.Sprintf("DType(%d)", int(d))
}

// Shape is an NCHW tensor shape: batch, channels, height, width.
// Fully-connected activations use H = W = 1.
type Shape struct {
	N, C, H, W int
}

// NCHW builds a Shape, validating that all dimensions are positive.
func NCHW(n, c, h, w int) Shape {
	s := Shape{n, c, h, w}
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return s
}

// Vec builds the shape of a per-sample vector (FC activations).
func Vec(n, c int) Shape { return NCHW(n, c, 1, 1) }

// Valid reports whether every dimension is at least 1.
func (s Shape) Valid() bool { return s.N >= 1 && s.C >= 1 && s.H >= 1 && s.W >= 1 }

// Elems returns the number of elements in the tensor.
func (s Shape) Elems() int64 {
	return int64(s.N) * int64(s.C) * int64(s.H) * int64(s.W)
}

// PerSample returns the number of elements in one batch sample (C*H*W).
func (s Shape) PerSample() int64 {
	return int64(s.C) * int64(s.H) * int64(s.W)
}

// Bytes returns the tensor footprint for the given element type.
func (s Shape) Bytes(d DType) int64 { return s.Elems() * d.Size() }

// WithBatch returns the same shape with a different batch dimension.
func (s Shape) WithBatch(n int) Shape { return NCHW(n, s.C, s.H, s.W) }

func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s.N, s.C, s.H, s.W)
}

// ConvOut computes the spatial output size of a convolution or pooling
// window: floor or ceil of (in + 2*pad - window)/stride + 1. Torch/cuDNN use
// floor mode by default; Caffe-style GoogLeNet pooling uses ceil mode.
func ConvOut(in, window, stride, pad int, ceilMode bool) int {
	if window <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry window=%d stride=%d pad=%d", window, stride, pad))
	}
	num := in + 2*pad - window
	if num < 0 {
		panic(fmt.Sprintf("tensor: window %d larger than padded input %d", window, in+2*pad))
	}
	out := num / stride
	if ceilMode && num%stride != 0 {
		out++
	}
	out++
	if ceilMode {
		// Caffe clamps so the last window starts inside the (padded) input.
		if (out-1)*stride >= in+pad {
			out--
		}
	}
	return out
}

// Bytes pretty-prints a byte count using binary units, matching the MB/GB
// figures quoted in the paper (which are MiB-scale).
func FormatBytes(b int64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case b >= gib:
		return fmt.Sprintf("%.2f GB", float64(b)/float64(gib))
	case b >= mib:
		return fmt.Sprintf("%.1f MB", float64(b)/float64(mib))
	case b >= kib:
		return fmt.Sprintf("%.1f KB", float64(b)/float64(kib))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// MiB converts bytes to binary megabytes as a float, the unit used on the
// paper's figure axes.
func MiB(b int64) float64 { return float64(b) / (1 << 20) }

package vdnn_test

import (
	"encoding/json"
	"flag"
	"io"
	"testing"

	"vdnn"
)

func TestEnumTextRoundTrip(t *testing.T) {
	for _, p := range []vdnn.Policy{vdnn.Baseline, vdnn.VDNNAll, vdnn.VDNNConv, vdnn.VDNNDyn} {
		b, err := p.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got vdnn.Policy
		if err := got.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Errorf("policy %v round-tripped to %v via %q", p, got, b)
		}
		// Display forms parse too.
		if err := got.UnmarshalText([]byte(p.String())); err != nil || got != p {
			t.Errorf("policy display form %q did not parse: %v", p.String(), err)
		}
	}
	for _, m := range []vdnn.AlgoMode{vdnn.MemOptimal, vdnn.PerfOptimal, vdnn.GreedyAlgo} {
		b, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got vdnn.AlgoMode
		if err := got.UnmarshalText(b); err != nil || got != m {
			t.Errorf("algo %v round trip via %q failed: %v", m, b, err)
		}
		if err := got.UnmarshalText([]byte(m.String())); err != nil || got != m {
			t.Errorf("algo display form %q did not parse: %v", m.String(), err)
		}
	}
	for _, m := range []vdnn.PrefetchMode{vdnn.PrefetchJIT, vdnn.PrefetchFig10, vdnn.PrefetchNone, vdnn.PrefetchEager} {
		b, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got vdnn.PrefetchMode
		if err := got.UnmarshalText(b); err != nil || got != m {
			t.Errorf("prefetch %v round trip via %q failed: %v", m, b, err)
		}
		if err := got.UnmarshalText([]byte(m.String())); err != nil || got != m {
			t.Errorf("prefetch display form %q did not parse: %v", m.String(), err)
		}
	}
	for _, c := range []vdnn.Codec{vdnn.CodecNone, vdnn.CodecZVC, vdnn.CodecRLE} {
		b, err := c.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got vdnn.Codec
		if err := got.UnmarshalText(b); err != nil || got != c {
			t.Errorf("codec %v round trip via %q failed: %v", c, b, err)
		}
		if err := got.UnmarshalText([]byte(c.String())); err != nil || got != c {
			t.Errorf("codec display form %q did not parse: %v", c.String(), err)
		}
	}
	var p vdnn.Policy
	if err := p.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("bogus policy token accepted")
	}
	var c vdnn.Codec
	if err := c.UnmarshalText([]byte("gzip")); err == nil {
		t.Error("bogus codec token accepted")
	}
}

func TestEnumAliases(t *testing.T) {
	cases := []struct {
		in   string
		want vdnn.Policy
	}{
		{"base", vdnn.Baseline}, {"baseline", vdnn.Baseline},
		{"all", vdnn.VDNNAll}, {"vDNN-all", vdnn.VDNNAll}, {"VDNN-ALL", vdnn.VDNNAll},
		{"conv", vdnn.VDNNConv}, {"dyn", vdnn.VDNNDyn}, {"vdnn-dyn", vdnn.VDNNDyn},
	}
	for _, c := range cases {
		var p vdnn.Policy
		if err := p.UnmarshalText([]byte(c.in)); err != nil || p != c.want {
			t.Errorf("policy %q = %v (%v), want %v", c.in, p, err, c.want)
		}
	}
	var a vdnn.AlgoMode
	for _, in := range []string{"m", "(m)", "mem", "memory-optimal"} {
		if err := a.UnmarshalText([]byte(in)); err != nil || a != vdnn.MemOptimal {
			t.Errorf("algo %q = %v (%v)", in, a, err)
		}
	}
	var f vdnn.PrefetchMode
	for _, in := range []string{"fig10", "fig10-window"} {
		if err := f.UnmarshalText([]byte(in)); err != nil || f != vdnn.PrefetchFig10 {
			t.Errorf("prefetch %q = %v (%v)", in, f, err)
		}
	}
	var c vdnn.Codec
	for in, want := range map[string]vdnn.Codec{
		"zero-value": vdnn.CodecZVC, "cdma": vdnn.CodecZVC,
		"csr": vdnn.CodecRLE, "off": vdnn.CodecNone,
	} {
		if err := c.UnmarshalText([]byte(in)); err != nil || c != want {
			t.Errorf("codec %q = %v (%v), want %v", in, c, err, want)
		}
	}
}

// TestEnumFlagValue checks the enums bind directly as CLI flags, the way
// cmd/vdnn-sim and cmd/vdnn-explore use them.
func TestEnumFlagValue(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	policy := vdnn.VDNNDyn
	algo := vdnn.PerfOptimal
	prefetch := vdnn.PrefetchJIT
	codec := vdnn.CodecNone
	fs.Var(&policy, "policy", "")
	fs.Var(&algo, "algo", "")
	fs.Var(&prefetch, "prefetch", "")
	fs.Var(&codec, "codec", "")
	if err := fs.Parse([]string{"-policy", "conv", "-algo", "greedy", "-prefetch", "eager", "-codec", "zvc"}); err != nil {
		t.Fatal(err)
	}
	if policy != vdnn.VDNNConv || algo != vdnn.GreedyAlgo || prefetch != vdnn.PrefetchEager || codec != vdnn.CodecZVC {
		t.Errorf("parsed (%v, %v, %v, %v)", policy, algo, prefetch, codec)
	}
	if err := fs.Parse([]string{"-policy", "nope"}); err == nil {
		t.Error("invalid -policy accepted")
	}
}

// TestConfigJSONRoundTrip checks a full Config — device spec, link and enums
// included — survives encoding/json unchanged, which is what the sweep/serve
// surfaces rely on.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := vdnn.Config{
		Spec:        vdnn.GTX980(),
		Policy:      vdnn.VDNNConv,
		Algo:        vdnn.GreedyAlgo,
		Prefetch:    vdnn.PrefetchFig10,
		Oracle:      true,
		Compression: vdnn.Compression{Codec: vdnn.CodecZVC, Sparsity: "flat50"},
		HostBytes:   32 << 30,
		Devices:     4,
		Topology:    vdnn.SharedGen3Root(),
	}
	cfg.Spec.Link = vdnn.NVLink()
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got vdnn.Config
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Errorf("round trip changed the config:\n got %+v\nwant %+v", got, cfg)
	}
	// The enums serialize as their text tokens, not bare ints.
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["Policy"] != "vdnn-conv" || m["Algo"] != "greedy" || m["Prefetch"] != "fig10" {
		t.Errorf("enum JSON forms = %v/%v/%v", m["Policy"], m["Algo"], m["Prefetch"])
	}
	if comp, ok := m["Compression"].(map[string]any); !ok || comp["codec"] != "zvc" {
		t.Errorf("compression JSON form = %v", m["Compression"])
	}
}

package vdnn_test

import (
	"encoding/json"
	"flag"
	"io"
	"strings"
	"testing"

	"vdnn"
)

func TestEnumTextRoundTrip(t *testing.T) {
	for _, p := range []vdnn.Policy{vdnn.Baseline, vdnn.VDNNAll, vdnn.VDNNConv, vdnn.VDNNDyn} {
		b, err := p.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got vdnn.Policy
		if err := got.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Errorf("policy %v round-tripped to %v via %q", p, got, b)
		}
		// Display forms parse too.
		if err := got.UnmarshalText([]byte(p.String())); err != nil || got != p {
			t.Errorf("policy display form %q did not parse: %v", p.String(), err)
		}
	}
	for _, m := range []vdnn.AlgoMode{vdnn.MemOptimal, vdnn.PerfOptimal, vdnn.GreedyAlgo} {
		b, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got vdnn.AlgoMode
		if err := got.UnmarshalText(b); err != nil || got != m {
			t.Errorf("algo %v round trip via %q failed: %v", m, b, err)
		}
		if err := got.UnmarshalText([]byte(m.String())); err != nil || got != m {
			t.Errorf("algo display form %q did not parse: %v", m.String(), err)
		}
	}
	for _, m := range []vdnn.PrefetchMode{vdnn.PrefetchJIT, vdnn.PrefetchFig10, vdnn.PrefetchNone, vdnn.PrefetchEager} {
		b, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got vdnn.PrefetchMode
		if err := got.UnmarshalText(b); err != nil || got != m {
			t.Errorf("prefetch %v round trip via %q failed: %v", m, b, err)
		}
		if err := got.UnmarshalText([]byte(m.String())); err != nil || got != m {
			t.Errorf("prefetch display form %q did not parse: %v", m.String(), err)
		}
	}
	for _, c := range []vdnn.Codec{vdnn.CodecNone, vdnn.CodecZVC, vdnn.CodecRLE} {
		b, err := c.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got vdnn.Codec
		if err := got.UnmarshalText(b); err != nil || got != c {
			t.Errorf("codec %v round trip via %q failed: %v", c, b, err)
		}
		if err := got.UnmarshalText([]byte(c.String())); err != nil || got != c {
			t.Errorf("codec display form %q did not parse: %v", c.String(), err)
		}
	}
	var p vdnn.Policy
	if err := p.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("bogus policy token accepted")
	}
	var c vdnn.Codec
	if err := c.UnmarshalText([]byte("gzip")); err == nil {
		t.Error("bogus codec token accepted")
	}
}

func TestEnumAliases(t *testing.T) {
	cases := []struct {
		in   string
		want vdnn.Policy
	}{
		{"base", vdnn.Baseline}, {"baseline", vdnn.Baseline},
		{"all", vdnn.VDNNAll}, {"vDNN-all", vdnn.VDNNAll}, {"VDNN-ALL", vdnn.VDNNAll},
		{"conv", vdnn.VDNNConv}, {"dyn", vdnn.VDNNDyn}, {"vdnn-dyn", vdnn.VDNNDyn},
	}
	for _, c := range cases {
		var p vdnn.Policy
		if err := p.UnmarshalText([]byte(c.in)); err != nil || p != c.want {
			t.Errorf("policy %q = %v (%v), want %v", c.in, p, err, c.want)
		}
	}
	var a vdnn.AlgoMode
	for _, in := range []string{"m", "(m)", "mem", "memory-optimal"} {
		if err := a.UnmarshalText([]byte(in)); err != nil || a != vdnn.MemOptimal {
			t.Errorf("algo %q = %v (%v)", in, a, err)
		}
	}
	var f vdnn.PrefetchMode
	for _, in := range []string{"fig10", "fig10-window"} {
		if err := f.UnmarshalText([]byte(in)); err != nil || f != vdnn.PrefetchFig10 {
			t.Errorf("prefetch %q = %v (%v)", in, f, err)
		}
	}
	var c vdnn.Codec
	for in, want := range map[string]vdnn.Codec{
		"zero-value": vdnn.CodecZVC, "cdma": vdnn.CodecZVC,
		"csr": vdnn.CodecRLE, "off": vdnn.CodecNone,
	} {
		if err := c.UnmarshalText([]byte(in)); err != nil || c != want {
			t.Errorf("codec %q = %v (%v), want %v", in, c, err, want)
		}
	}
}

// TestEnumFlagValue checks the enums bind directly as CLI flags, the way
// cmd/vdnn-sim and cmd/vdnn-explore use them.
func TestEnumFlagValue(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	policy := vdnn.VDNNDyn
	algo := vdnn.PerfOptimal
	prefetch := vdnn.PrefetchJIT
	codec := vdnn.CodecNone
	fs.Var(&policy, "policy", "")
	fs.Var(&algo, "algo", "")
	fs.Var(&prefetch, "prefetch", "")
	fs.Var(&codec, "codec", "")
	if err := fs.Parse([]string{"-policy", "conv", "-algo", "greedy", "-prefetch", "eager", "-codec", "zvc"}); err != nil {
		t.Fatal(err)
	}
	if policy != vdnn.VDNNConv || algo != vdnn.GreedyAlgo || prefetch != vdnn.PrefetchEager || codec != vdnn.CodecZVC {
		t.Errorf("parsed (%v, %v, %v, %v)", policy, algo, prefetch, codec)
	}
	if err := fs.Parse([]string{"-policy", "nope"}); err == nil {
		t.Error("invalid -policy accepted")
	}
}

// TestHardwareEnumTextRoundTrip covers the catalog enums the backend
// redesign added: memory kinds, link classes, and the planner objective
// (which also binds as a CLI flag, the way cmd/vdnn-plan uses it).
func TestHardwareEnumTextRoundTrip(t *testing.T) {
	for _, k := range []vdnn.MemoryKind{vdnn.GDDR, vdnn.HBM, vdnn.NearDRAM} {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got vdnn.MemoryKind
		if err := got.UnmarshalText(b); err != nil || got != k {
			t.Errorf("memory kind %v round trip via %q failed: %v", k, b, err)
		}
	}
	for _, c := range []vdnn.LinkClass{vdnn.ClassPCIe, vdnn.ClassNVLink, vdnn.ClassOnDie} {
		b, err := c.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got vdnn.LinkClass
		if err := got.UnmarshalText(b); err != nil || got != c {
			t.Errorf("link class %v round trip via %q failed: %v", c, b, err)
		}
	}
	for _, o := range []vdnn.PlanObjective{vdnn.MinimizeTime, vdnn.MinimizeEnergy} {
		b, err := o.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got vdnn.PlanObjective
		if err := got.UnmarshalText(b); err != nil || got != o {
			t.Errorf("objective %v round trip via %q failed: %v", o, b, err)
		}
	}
	var o vdnn.PlanObjective
	for in, want := range map[string]vdnn.PlanObjective{
		"": vdnn.MinimizeTime, "time": vdnn.MinimizeTime, "step-time": vdnn.MinimizeTime,
		"energy": vdnn.MinimizeEnergy, "joules": vdnn.MinimizeEnergy, "ENERGY": vdnn.MinimizeEnergy,
	} {
		if err := o.UnmarshalText([]byte(in)); err != nil || o != want {
			t.Errorf("objective %q = %v (%v), want %v", in, o, err, want)
		}
	}
	if err := o.UnmarshalText([]byte("watts")); err == nil {
		t.Error("bogus objective token accepted")
	}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var flagObj vdnn.PlanObjective
	fs.Var(&flagObj, "objective", "")
	if err := fs.Parse([]string{"-objective", "energy"}); err != nil || flagObj != vdnn.MinimizeEnergy {
		t.Errorf("-objective energy parsed to %v (%v)", flagObj, err)
	}
}

// TestHardwareJSONTags pins the lowercase wire names of the hardware types
// (matching the compress.Config convention), so serve/sweep payloads stay
// stable as fields move.
func TestHardwareJSONTags(t *testing.T) {
	spec := vdnn.PascalP100()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "peak_flops", "dram_bps", "eff_dram_frac",
		"mem_bytes", "l2_bytes", "mem_kind", "link", "launch_overhead", "sync_overhead", "power"} {
		if _, ok := m[key]; !ok {
			t.Errorf("gpu spec JSON lacks %q: %s", key, b)
		}
	}
	if m["mem_kind"] != "hbm" {
		t.Errorf("P100 mem_kind = %v, want hbm", m["mem_kind"])
	}
	power, ok := m["power"].(map[string]any)
	if !ok {
		t.Fatalf("power JSON form = %v", m["power"])
	}
	for _, key := range []string{"idle_w", "compute_w", "dram_w", "copy_w"} {
		if _, ok := power[key]; !ok {
			t.Errorf("power params JSON lacks %q: %s", key, b)
		}
	}
	link, ok := m["link"].(map[string]any)
	if !ok {
		t.Fatalf("link JSON form = %v", m["link"])
	}
	for _, key := range []string{"name", "class", "peak_bps", "eff_bps", "dma_setup", "page_latency", "page_size"} {
		if _, ok := link[key]; !ok {
			t.Errorf("link JSON lacks %q: %s", key, b)
		}
	}
	if link["class"] != "nvlink" {
		t.Errorf("P100 link class = %v, want nvlink", link["class"])
	}

	var gotSpec vdnn.GPU
	if err := json.Unmarshal(b, &gotSpec); err != nil {
		t.Fatal(err)
	}
	if gotSpec != spec {
		t.Errorf("spec round trip changed:\n got %+v\nwant %+v", gotSpec, spec)
	}

	topo, _ := vdnn.TopologyByName("shared-2x16")
	tb, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	var tm map[string]any
	if err := json.Unmarshal(tb, &tm); err != nil {
		t.Fatal(err)
	}
	if _, ok := tm["root_bps"]; !ok {
		t.Errorf("topology JSON lacks root_bps: %s", tb)
	}
	var gotTopo vdnn.Topology
	if err := json.Unmarshal(tb, &gotTopo); err != nil {
		t.Fatal(err)
	}
	if gotTopo != topo {
		t.Errorf("topology round trip changed: got %+v want %+v", gotTopo, topo)
	}

	e := vdnn.EnergyStats{ComputeJ: 1, DMAJ: 2, CodecJ: 3, IdleJ: 4}
	eb, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var em map[string]any
	if err := json.Unmarshal(eb, &em); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"compute_j", "dma_j", "codec_j", "idle_j"} {
		if _, ok := em[key]; !ok {
			t.Errorf("energy stats JSON lacks %q: %s", key, eb)
		}
	}
}

// TestConfigBackendByName checks Config JSON accepts the catalog name form:
// {"Backend": "p100"} resolves through the registry, an explicit Spec and a
// name together are rejected, and unknown names list the catalog.
func TestConfigBackendByName(t *testing.T) {
	var cfg vdnn.Config
	if err := json.Unmarshal([]byte(`{"Backend":"p100","Policy":"vdnn-all","Algo":"m"}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if want, _ := vdnn.GPUByName("p100"); cfg.Spec != want {
		t.Errorf("backend name resolved to %+v, want the p100 entry", cfg.Spec)
	}
	if cfg.Policy != vdnn.VDNNAll {
		t.Errorf("sibling fields lost: policy = %v", cfg.Policy)
	}

	var bad vdnn.Config
	err := json.Unmarshal([]byte(`{"Backend":"titan-z"}`), &bad)
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, n := range vdnn.GPUNames() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q does not list catalog name %q", err, n)
		}
	}

	full, err := json.Marshal(vdnn.Config{Spec: vdnn.TitanX()})
	if err != nil {
		t.Fatal(err)
	}
	conflict := `{"Backend":"gtx980",` + string(full[1:])
	if err := json.Unmarshal([]byte(conflict), &bad); err == nil {
		t.Fatal("backend name + explicit spec accepted")
	}
}

// TestConfigJSONRoundTrip checks a full Config — device spec, link and enums
// included — survives encoding/json unchanged, which is what the sweep/serve
// surfaces rely on.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := vdnn.Config{
		Spec:        vdnn.GTX980(),
		Policy:      vdnn.VDNNConv,
		Algo:        vdnn.GreedyAlgo,
		Prefetch:    vdnn.PrefetchFig10,
		Oracle:      true,
		Compression: vdnn.Compression{Codec: vdnn.CodecZVC, Sparsity: "flat50"},
		HostBytes:   32 << 30,
		Devices:     4,
		Topology:    vdnn.SharedGen3Root(),
	}
	cfg.Spec.Link = vdnn.NVLink()
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got vdnn.Config
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Errorf("round trip changed the config:\n got %+v\nwant %+v", got, cfg)
	}
	// The enums serialize as their text tokens, not bare ints.
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["Policy"] != "vdnn-conv" || m["Algo"] != "greedy" || m["Prefetch"] != "fig10" {
		t.Errorf("enum JSON forms = %v/%v/%v", m["Policy"], m["Algo"], m["Prefetch"])
	}
	if comp, ok := m["Compression"].(map[string]any); !ok || comp["codec"] != "zvc" {
		t.Errorf("compression JSON form = %v", m["Compression"])
	}
}

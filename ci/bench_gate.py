#!/usr/bin/env python3
"""Benchmark regression gate.

Usage: bench_gate.py CURRENT.json [BASELINE.json]

CURRENT.json is the freshly rendered benchmark report for this run.
BASELINE.json defaults to the newest committed BENCH_pr<N>.json (by PR
number) other than CURRENT itself.

Two independent checks, either of which fails the gate:

  1. Absolute floors. Every benchmark in the CURRENT run reporting a
     "speedup-x" or "reduction-x" metric is checked against
     BENCH_SPEEDUP_FLOOR / BENCH_REDUCTION_FLOOR. This half needs no
     baseline, so it can never be skipped by a missing or mismatched
     baseline entry.

     The speedup-x floor asserts parallel scaling, which a single-core
     runner cannot exhibit, so it applies only to measurements taken with
     gomaxprocs > 1 (recorded per benchmark by the render step; a
     measurement missing the field is gated conservatively, as if
     multi-core). reduction-x floors measure work avoided, not
     parallelism, and always apply.

  2. Relative bands against the baseline, matched by normalized name
     (the "-<GOMAXPROCS>" suffix go test appends is stripped on both
     sides — the gate's original sin was matching "BenchmarkReproAll/par"
     against "BenchmarkReproAll/par-4" and silently comparing nothing):
       - ns/op: one-sided, fail above 1.25x (timing improves freely);
       - B/op:  two-sided ±25%. Allocated bytes per op are
         near-deterministic, so a change in either direction is a real
         behavior change: above the band is a regression, below it the
         committed baseline is stale and must be refreshed with this
         run's numbers.

Exit status 0 = gate passed, 1 = at least one check failed.
"""

import glob
import json
import os
import re
import sys


def norm(name):
    """Strip go test's GOMAXPROCS suffix: BenchmarkFoo/par-4 -> .../par."""
    return re.sub(r"-\d+$", "", name)


def pr_num(path):
    m = re.match(r"BENCH_pr(\d+)\.json$", os.path.basename(path))
    return int(m.group(1)) if m else -1


def main(argv):
    current_name = argv[1]
    current = json.load(open(current_name))
    failed = False

    # --- Half 1: absolute floors, baseline-independent. ---------------------
    floors = {}
    for metric, env in (("speedup-x", "BENCH_SPEEDUP_FLOOR"),
                        ("reduction-x", "BENCH_REDUCTION_FLOOR")):
        if os.environ.get(env):
            floors[metric] = float(os.environ[env])
    for b in current["benchmarks"]:
        for metric, floor in floors.items():
            if metric not in b:
                continue
            gmp = b.get("gomaxprocs")
            if metric == "speedup-x" and gmp is not None and gmp <= 1:
                print(f"{norm(b['name'])}: {metric} {b[metric]:.2f} floor "
                      f"skipped (gomaxprocs {gmp}: parallel speedup cannot "
                      f"be asserted on a single core)")
                continue
            if b[metric] < floor:
                print(f"{norm(b['name'])}: {metric} {b[metric]:.2f} "
                      f"BELOW FLOOR {floor}")
                failed = True
            else:
                print(f"{norm(b['name'])}: {metric} {b[metric]:.2f} ok "
                      f"(floor {floor})")

    # --- Half 2: relative bands against the committed baseline. -------------
    if len(argv) > 2:
        base_path = argv[2]
    else:
        baselines = sorted(
            (p for p in glob.glob("BENCH_pr*.json")
             if os.path.abspath(p) != os.path.abspath(current_name)
             and pr_num(p) >= 0),
            key=pr_num)
        base_path = baselines[-1] if baselines else None
    if base_path is None:
        print("no committed BENCH_pr<N>.json baseline; "
              "relative bands skipped (floors above still applied)")
        return 1 if failed else 0

    base = json.load(open(base_path))
    base_by_name = {norm(b["name"]): b for b in base["benchmarks"]}
    print(f"gating against {base_path} (pr {base['pr']})")

    for b in current["benchmarks"]:
        name = norm(b["name"])
        ref = base_by_name.get(name)
        if ref is None:
            print(f"{name}: no baseline entry (new benchmark; "
                  f"will be gated once a baseline records it)")
            continue
        # ns/op: one-sided band.
        ratio = b["ns_per_op"] / ref["ns_per_op"]
        status = "REGRESSION" if ratio > 1.25 else "ok"
        failed = failed or ratio > 1.25
        print(f"{name}: {ref['ns_per_op']:.0f} -> {b['ns_per_op']:.0f} ns/op "
              f"({ratio:.2f}x) {status}")
        # B/op: two-sided band.
        if "B/op" in b and "B/op" in ref and ref["B/op"] > 0:
            ratio = b["B/op"] / ref["B/op"]
            if ratio > 1.25:
                status = "ALLOC REGRESSION"
                failed = True
            elif ratio < 0.75:
                status = ("IMPROVED BEYOND BAND — refresh the committed "
                          "baseline with this run's numbers")
                failed = True
            else:
                status = "ok"
            print(f"{name}: {ref['B/op']:.0f} -> {b['B/op']:.0f} B/op "
                  f"({ratio:.2f}x) {status}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

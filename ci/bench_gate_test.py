#!/usr/bin/env python3
"""Self-test for bench_gate.py — run directly or via unittest.

Covers the gating matrix the CI job relies on:

  - absolute floors pass/fail, with the speedup-x floor skipped for
    single-core measurements (gomaxprocs <= 1) but reduction-x still
    enforced there;
  - measurements missing the gomaxprocs field gated conservatively;
  - relative ns/op and B/op bands against a baseline, including the
    two-sided B/op band (an improvement beyond the band fails too);
  - GOMAXPROCS-suffix normalization when matching baseline entries.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_gate


def bench(name, ns=100.0, **extra):
    b = {"name": name, "iterations": 1, "ns_per_op": ns}
    b.update(extra)
    return b


class GateTest(unittest.TestCase):
    def run_gate(self, current, baseline=None, env=None):
        """Run bench_gate.main in a temp dir; returns its exit status."""
        saved_env = {k: os.environ.pop(k, None)
                     for k in ("BENCH_SPEEDUP_FLOOR", "BENCH_REDUCTION_FLOOR")}
        os.environ.update(env or {})
        cwd = os.getcwd()
        try:
            with tempfile.TemporaryDirectory() as d:
                os.chdir(d)
                cur = os.path.join(d, "BENCH_pr99.json")
                json.dump({"pr": "99", "benchmarks": current}, open(cur, "w"))
                argv = ["bench_gate.py", cur]
                if baseline is not None:
                    base = os.path.join(d, "BENCH_pr98.json")
                    json.dump({"pr": "98", "benchmarks": baseline},
                              open(base, "w"))
                    argv.append(base)
                return bench_gate.main(argv)
        finally:
            os.chdir(cwd)
            for k, v in saved_env.items():
                os.environ.pop(k, None)
                if v is not None:
                    os.environ[k] = v

    # --- absolute floors ---------------------------------------------------

    def test_speedup_floor_passes_multicore(self):
        cur = [bench("BenchmarkReproAll/par", **{"speedup-x": 2.0,
                                                 "gomaxprocs": 4})]
        self.assertEqual(
            self.run_gate(cur, env={"BENCH_SPEEDUP_FLOOR": "1.5"}), 0)

    def test_speedup_floor_fails_multicore(self):
        cur = [bench("BenchmarkReproAll/par", **{"speedup-x": 1.1,
                                                 "gomaxprocs": 4})]
        self.assertEqual(
            self.run_gate(cur, env={"BENCH_SPEEDUP_FLOOR": "1.5"}), 1)

    def test_speedup_floor_skipped_on_single_core(self):
        # One core cannot exhibit parallel speedup; the floor must not fail
        # the measurement there.
        cur = [bench("BenchmarkReproAll/par", **{"speedup-x": 0.9,
                                                 "gomaxprocs": 1})]
        self.assertEqual(
            self.run_gate(cur, env={"BENCH_SPEEDUP_FLOOR": "1.5"}), 0)

    def test_speedup_floor_conservative_without_gomaxprocs(self):
        # A measurement that does not say how many cores it used is gated as
        # if multi-core — old reports cannot dodge the floor.
        cur = [bench("BenchmarkReproAll/par", **{"speedup-x": 0.9})]
        self.assertEqual(
            self.run_gate(cur, env={"BENCH_SPEEDUP_FLOOR": "1.5"}), 1)

    def test_reduction_floor_applies_on_single_core(self):
        # Work avoided is core-count independent: the reduction floor holds
        # even at gomaxprocs 1.
        cur = [bench("BenchmarkDifferentialSweep", **{"reduction-x": 2.0,
                                                      "gomaxprocs": 1})]
        self.assertEqual(
            self.run_gate(cur, env={"BENCH_REDUCTION_FLOOR": "5"}), 1)
        cur[0]["reduction-x"] = 6.0
        self.assertEqual(
            self.run_gate(cur, env={"BENCH_REDUCTION_FLOOR": "5"}), 0)

    # --- relative bands ----------------------------------------------------

    def test_ns_per_op_band(self):
        base = [bench("BenchmarkFoo", ns=100.0)]
        self.assertEqual(
            self.run_gate([bench("BenchmarkFoo", ns=120.0)], base), 0)
        self.assertEqual(
            self.run_gate([bench("BenchmarkFoo", ns=130.0)], base), 1)
        # Timing may improve without bound.
        self.assertEqual(
            self.run_gate([bench("BenchmarkFoo", ns=10.0)], base), 0)

    def test_b_per_op_band_two_sided(self):
        base = [bench("BenchmarkFoo", **{"B/op": 1000.0})]
        self.assertEqual(
            self.run_gate([bench("BenchmarkFoo", **{"B/op": 1100.0})], base), 0)
        self.assertEqual(
            self.run_gate([bench("BenchmarkFoo", **{"B/op": 1500.0})], base), 1)
        # Beyond-band improvement fails too: the baseline must be refreshed.
        self.assertEqual(
            self.run_gate([bench("BenchmarkFoo", **{"B/op": 500.0})], base), 1)

    def test_gomaxprocs_suffix_normalized(self):
        # "-8" on the current name and "-4" on the baseline are the same
        # benchmark measured on different machines.
        base = [bench("BenchmarkFoo/par-4", ns=100.0)]
        self.assertEqual(
            self.run_gate([bench("BenchmarkFoo/par-8", ns=200.0)], base), 1)
        self.assertEqual(
            self.run_gate([bench("BenchmarkFoo/par-8", ns=100.0)], base), 0)

    def test_new_benchmark_without_baseline_entry_passes(self):
        base = [bench("BenchmarkFoo", ns=100.0)]
        self.assertEqual(
            self.run_gate([bench("BenchmarkFoo", ns=100.0),
                           bench("BenchmarkNew", ns=1.0)], base), 0)


if __name__ == "__main__":
    unittest.main()

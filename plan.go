package vdnn

import (
	"context"

	"vdnn/internal/plan"
	"vdnn/internal/sweep"
)

// PlanRequest describes one auto-parallelism planning problem: the workload
// (network name and global batch size), the fleet (GPU model, device-count
// budget, topology) and the per-device memory cap the winner must train
// under. See the field documentation on plan.Request; zero-valued fields
// take the paper's defaults (Titan X, budget of 4 devices, shared gen3
// root, codec-free plus ZVC branches).
type PlanRequest = plan.Request

// PlanResult is the outcome of a planner search: the winning candidate and
// its materialized Config and Result (when the request is feasible), the
// full deterministic evidence table, and the search counters. Its Table
// method renders the evidence for humans.
type PlanResult = plan.Plan

// PlanCandidate is one point of the planner's design space.
type PlanCandidate = plan.Candidate

// PlanEvidence is one row of the planner's evidence table: a candidate and
// what the search did with it (evaluated with metrics, or pruned/invalid
// with a reason).
type PlanEvidence = plan.Evidence

// PlanCounters summarizes how much of the candidate space a search paid
// for: space size, evaluated, pruned without evaluation, invalid, refined.
type PlanCounters = plan.Counters

// PlanObjective selects what the planner minimizes: step time (the zero
// value, the historical behavior) or whole-fleet energy per iteration. Set
// it on PlanRequest.Objective; it round-trips as "time"/"energy" in JSON
// and implements flag.Value for CLI binding.
type PlanObjective = plan.Objective

// Planner objectives.
const (
	// MinimizeTime picks the lowest step time (default).
	MinimizeTime = plan.MinimizeTime
	// MinimizeEnergy picks the lowest Result.Energy.TotalJ() across every
	// device of the candidate.
	MinimizeEnergy = plan.MinimizeEnergy
)

// PlanMaxDevices is the largest device budget a PlanRequest may ask for.
const PlanMaxDevices = plan.MaxBudget

// ErrInfeasiblePlan reports a planning problem with no trainable
// configuration under the memory cap. Plan still returns the PlanResult
// alongside it — the evidence table records why every branch died.
var ErrInfeasiblePlan = plan.ErrInfeasible

// Plan searches the parallelism design space (devices x stages x
// micro-batches x offload policy x algorithm mode x codec) for the
// configuration that trains under the request's memory cap and minimizes
// the request's objective (step time by default, or energy per iteration
// with PlanRequest.Objective = MinimizeEnergy) — the one-shot convenience
// for scripts. Long-lived callers should use
// Simulator.Plan, which shares the simulator's result cache across
// searches. On an infeasible request the error is ErrInfeasiblePlan and the
// returned PlanResult holds the full evidence table.
func Plan(req PlanRequest) (*PlanResult, error) {
	return PlanContext(context.Background(), req)
}

// PlanContext is Plan under a context: cancellation aborts the search
// between and during candidate simulations, returning an error satisfying
// errors.Is(err, ErrCanceled).
func PlanContext(ctx context.Context, req PlanRequest) (*PlanResult, error) {
	eng := sweep.NewEngine(0)
	env := plan.Env{
		Net: func(batch int) (*Network, error) { return BuildNetwork(req.Network, batch) },
		Run: eng.RunAll,
	}
	return plan.Search(ctx, req, env)
}

// Plan runs the auto-parallelism search on this simulator: every candidate
// executes through RunBatch, so evaluations land in the shared result
// cache, coalesce with concurrent identical requests (a repeated search is
// answered almost entirely from cache), respect the simulator's parallelism
// bound and stop promptly on cancellation.
func (s *Simulator) Plan(ctx context.Context, req PlanRequest) (*PlanResult, error) {
	env := plan.Env{
		Net: func(batch int) (*Network, error) { return s.Network(req.Network, batch) },
		Run: s.RunBatch,
	}
	return plan.Search(ctx, req, env)
}
